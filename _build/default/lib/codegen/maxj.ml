module Ir = Dhdl_ir.Ir
module Op = Dhdl_ir.Op
module Dtype = Dhdl_ir.Dtype

let capitalize_ascii = String.capitalize_ascii

let kernel_class_name (d : Ir.design) =
  let clean =
    String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') then c else '_') d.d_name
  in
  capitalize_ascii clean ^ "Kernel"

let dfe_type = function
  | Dtype.Flt { exp_bits; sig_bits } -> Printf.sprintf "dfeFloat(%d, %d)" exp_bits sig_bits
  | Dtype.Fix { signed; int_bits; frac_bits } ->
    Printf.sprintf "dfeFixOffset(%d, %d, SignMode.%s)" (int_bits + frac_bits) (-frac_bits)
      (if signed then "TWOSCOMPLEMENT" else "UNSIGNED")
  | Dtype.Bool -> "dfeBool()"

let operand = function
  | Ir.Const f -> Printf.sprintf "constant.var(%g)" f
  | Ir.Iter name -> name
  | Ir.Value v -> Printf.sprintf "v%d" v

let flat_addr (m : Ir.mem) addr =
  (* Row-major flattening as MaxJ address arithmetic. *)
  let rec go dims addr acc =
    match (dims, addr) with
    | [], [] -> acc
    | d :: dims, a :: addr ->
      let term = operand a in
      let acc = if acc = "" then term else Printf.sprintf "(%s * %d + %s)" acc d term in
      go dims addr acc
    | _ -> invalid_arg ("maxj: address arity mismatch for " ^ m.Ir.mem_name)
  in
  go m.Ir.mem_dims addr ""

let op_expr op args =
  let a i = operand (List.nth args i) in
  match (op : Op.t) with
  | Op.Add -> Printf.sprintf "%s + %s" (a 0) (a 1)
  | Op.Sub -> Printf.sprintf "%s - %s" (a 0) (a 1)
  | Op.Mul -> Printf.sprintf "%s * %s" (a 0) (a 1)
  | Op.Div -> Printf.sprintf "%s / %s" (a 0) (a 1)
  | Op.Min -> Printf.sprintf "KernelMath.min(%s, %s)" (a 0) (a 1)
  | Op.Max -> Printf.sprintf "KernelMath.max(%s, %s)" (a 0) (a 1)
  | Op.Neg -> Printf.sprintf "-%s" (a 0)
  | Op.Abs -> Printf.sprintf "KernelMath.abs(%s)" (a 0)
  | Op.Sqrt -> Printf.sprintf "KernelMath.sqrt(%s)" (a 0)
  | Op.Exp -> Printf.sprintf "KernelMath.exp(%s)" (a 0)
  | Op.Log -> Printf.sprintf "KernelMath.log(%s)" (a 0)
  | Op.Floor -> Printf.sprintf "KernelMath.floor(%s)" (a 0)
  | Op.Lt -> Printf.sprintf "%s < %s" (a 0) (a 1)
  | Op.Le -> Printf.sprintf "%s <= %s" (a 0) (a 1)
  | Op.Gt -> Printf.sprintf "%s > %s" (a 0) (a 1)
  | Op.Ge -> Printf.sprintf "%s >= %s" (a 0) (a 1)
  | Op.Eq -> Printf.sprintf "%s === %s" (a 0) (a 1)
  | Op.Neq -> Printf.sprintf "%s !== %s" (a 0) (a 1)
  | Op.And -> Printf.sprintf "%s & %s" (a 0) (a 1)
  | Op.Or -> Printf.sprintf "%s | %s" (a 0) (a 1)
  | Op.Not -> Printf.sprintf "~%s" (a 0)
  | Op.Mux -> Printf.sprintf "%s ? %s : %s" (a 0) (a 1) (a 2)

let stmt_line (s : Ir.stmt) =
  match s with
  | Ir.Sop { dst; op; args; ty } ->
    Printf.sprintf "DFEVar v%d = %s; // %s" dst (op_expr op args) (Dtype.to_string ty)
  | Ir.Sload { dst; mem; addr; _ } ->
    Printf.sprintf "DFEVar v%d = %s.read(%s);" dst mem.Ir.mem_name (flat_addr mem addr)
  | Ir.Sstore { mem; addr; data } ->
    Printf.sprintf "%s.write(%s, %s, constant.var(true));" mem.Ir.mem_name (flat_addr mem addr)
      (operand data)
  | Ir.Sread_reg { dst; reg } -> Printf.sprintf "DFEVar v%d = %s.get();" dst reg.Ir.mem_name
  | Ir.Swrite_reg { reg; data } -> Printf.sprintf "%s.set(%s);" reg.Ir.mem_name (operand data)
  | Ir.Spush { queue; data } -> Printf.sprintf "%s.insert(%s); // priority queue" queue.Ir.mem_name (operand data)
  | Ir.Spop { dst; queue } -> Printf.sprintf "DFEVar v%d = %s.removeMin();" dst queue.Ir.mem_name

let counter_lines indent (loop : Ir.loop_info) =
  let pad = String.make indent ' ' in
  match loop.Ir.lp_counters with
  | [] -> []
  | counters ->
    let chain =
      Printf.sprintf "%sCounterChain %s_chain = control.count.makeCounterChain();" pad
        loop.Ir.lp_label
    in
    chain
    :: List.map
         (fun c ->
           Printf.sprintf "%sDFEVar %s = %s_chain.addCounter(%d, %d); // %d..%d" pad
             c.Ir.ctr_name loop.Ir.lp_label
             (Ir.counter_trip c) c.Ir.ctr_step c.Ir.ctr_start c.Ir.ctr_stop)
         counters

let rec ctrl_lines indent (c : Ir.ctrl) =
  let pad = String.make indent ' ' in
  match c with
  | Ir.Pipe { loop; body; reduce } ->
    let head =
      Printf.sprintf "%s{ // Pipe %s (par=%d)" pad loop.Ir.lp_label loop.Ir.lp_par
    in
    let counters = counter_lines (indent + 2) loop in
    let stmts = List.map (fun s -> String.make (indent + 2) ' ' ^ stmt_line s) body in
    let red =
      match reduce with
      | None -> []
      | Some r ->
        [
          Printf.sprintf "%s  // reduction tree (width %d) into %s" pad loop.Ir.lp_par
            r.Ir.sr_out.Ir.mem_name;
          Printf.sprintf "%s  %s.accumulate(Reductions.%s(%s));" pad r.Ir.sr_out.Ir.mem_name
            (Op.name r.Ir.sr_op) (operand r.Ir.sr_value);
        ]
    in
    (head :: counters) @ stmts @ red @ [ pad ^ "}" ]
  | Ir.Loop { loop; pipelined; stages; reduce } ->
    let kind = if pipelined then "MetaPipe" else "Sequential" in
    let head = Printf.sprintf "%s{ // %s %s" pad kind loop.Ir.lp_label in
    let counters = counter_lines (indent + 2) loop in
    let sm =
      Printf.sprintf "%s  SMIO %s_sm = addStateMachine(\"%s\", new %sStateMachine(this, %d));" pad
        loop.Ir.lp_label loop.Ir.lp_label kind (List.length stages)
    in
    let inner = List.concat_map (ctrl_lines (indent + 2)) stages in
    let red =
      match reduce with
      | None -> []
      | Some r ->
        [
          Printf.sprintf "%s  // element-wise %s reduction: %s -> %s" pad (Op.name r.Ir.mr_op)
            r.Ir.mr_src.Ir.mem_name r.Ir.mr_dst.Ir.mem_name;
        ]
    in
    (head :: counters) @ (sm :: inner) @ red @ [ pad ^ "}" ]
  | Ir.Parallel { par_label; stages } ->
    let head = Printf.sprintf "%s{ // Parallel %s (fork-join)" pad par_label in
    (head :: List.concat_map (ctrl_lines (indent + 2)) stages) @ [ pad ^ "}" ]
  | Ir.Tile_load { src; dst; tile; par; _ } ->
    [
      Printf.sprintf
        "%sLMemCommandStream.makeKernelOutput(\"%s_cmd\"); // TileLd %s -> %s tile %s width %d" pad
        dst.Ir.mem_name src.Ir.mem_name dst.Ir.mem_name
        (String.concat "x" (List.map string_of_int tile))
        par;
    ]
  | Ir.Tile_store { dst; src; tile; par; _ } ->
    [
      Printf.sprintf
        "%sLMemCommandStream.makeKernelOutput(\"%s_cmd\"); // TileSt %s -> %s tile %s width %d" pad
        src.Ir.mem_name src.Ir.mem_name dst.Ir.mem_name
        (String.concat "x" (List.map string_of_int tile))
        par;
    ]

let mem_decl (m : Ir.mem) =
  match m.Ir.mem_kind with
  | Ir.Offchip ->
    Printf.sprintf "// OffChipMem %s: %s words of %s in LMem" m.Ir.mem_name
      (string_of_int (Ir.mem_words m))
      (dfe_type m.Ir.mem_ty)
  | Ir.Bram ->
    Printf.sprintf "Memory<DFEVar> %s = mem.alloc(%s, %d); // banks=%d%s" m.Ir.mem_name
      (dfe_type m.Ir.mem_ty) (Ir.mem_words m) m.Ir.mem_banks
      (if m.Ir.mem_double then ", double-buffered" else "")
  | Ir.Reg ->
    Printf.sprintf "DFEVar %s = %s.newInstance(this); // register%s" m.Ir.mem_name
      (dfe_type m.Ir.mem_ty)
      (if m.Ir.mem_double then " (double-buffered)" else "")
  | Ir.Queue ->
    Printf.sprintf "// priority queue %s: depth %d of %s" m.Ir.mem_name (Ir.mem_words m)
      (dfe_type m.Ir.mem_ty)

let emit (d : Ir.design) =
  let cls = kernel_class_name d in
  let header =
    [
      "package dhdl.generated;";
      "";
      "import com.maxeler.maxcompiler.v2.kernelcompiler.Kernel;";
      "import com.maxeler.maxcompiler.v2.kernelcompiler.KernelParameters;";
      "import com.maxeler.maxcompiler.v2.kernelcompiler.types.base.DFEVar;";
      "import com.maxeler.maxcompiler.v2.kernelcompiler.stdlib.core.CounterChain;";
      "import com.maxeler.maxcompiler.v2.kernelcompiler.stdlib.core.Mem.Memory;";
      "import com.maxeler.maxcompiler.v2.kernelcompiler.stdlib.KernelMath;";
      "import com.maxeler.maxcompiler.v2.kernelcompiler.stdlib.Reductions;";
      "import com.maxeler.maxcompiler.v2.kernelcompiler.stdlib.memory.LMemCommandStream;";
      "";
      Printf.sprintf "// generated from DHDL design '%s'" d.d_name;
      (let ps = List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) d.d_params in
       Printf.sprintf "// parameters: %s" (String.concat ", " ps));
      Printf.sprintf "class %s extends Kernel {" cls;
      Printf.sprintf "  %s(KernelParameters parameters) {" cls;
      "    super(parameters);";
    ]
  in
  let mems = List.map (fun m -> "    " ^ mem_decl m) d.d_mems in
  let body = ctrl_lines 4 d.d_top in
  String.concat "\n" (header @ mems @ body @ [ "  }"; "}"; "" ])

let emit_manager (d : Ir.design) =
  let cls = kernel_class_name d in
  let streams =
    List.filter_map
      (fun m ->
        match m.Ir.mem_kind with
        | Ir.Offchip ->
          Some
            (Printf.sprintf
               "    LMemInterface %s = addLMemInterface(); // %d words"
               m.Ir.mem_name (Ir.mem_words m))
        | Ir.Bram | Ir.Reg | Ir.Queue -> None)
      d.d_mems
  in
  String.concat "\n"
    ([
       "package dhdl.generated;";
       "";
       "import com.maxeler.maxcompiler.v2.managers.custom.CustomManager;";
       "";
       Printf.sprintf "class %sManager extends CustomManager {" cls;
       Printf.sprintf "  %sManager(EngineParameters params) {" cls;
       "    super(params);";
       Printf.sprintf "    KernelBlock kernel = addKernel(new %s(makeKernelParameters(\"%s\")));"
         cls cls;
     ]
    @ streams
    @ [ "  }"; "}"; "" ])
