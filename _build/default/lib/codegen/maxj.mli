(** MaxJ hardware generation (step 5 of Figure 1).

    Emits a Maxeler MaxJ kernel — the low-level Java-embedded hardware
    generation language the paper's compiler targets — from a DHDL design
    instance. Counters become [CounterChain]s, Pipes become dataflow
    expressions over [DFEVar]s, MetaPipes become state-machine-sequenced
    kernel blocks with double-buffered [Memory] objects, and tile transfers
    become LMem (DRAM) stream commands. The output is compilable-shaped
    Java source; without Maxeler's proprietary toolchain it is validated
    structurally (balanced blocks, declared-before-use, one node per IR
    statement). *)

val kernel_class_name : Dhdl_ir.Ir.design -> string
(** Java class name derived from the design name. *)

val emit : Dhdl_ir.Ir.design -> string
(** The kernel source text. *)

val emit_manager : Dhdl_ir.Ir.design -> string
(** The accompanying MaxJ manager (host-interface and LMem wiring). *)
