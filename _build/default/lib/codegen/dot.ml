module Ir = Dhdl_ir.Ir
module Op = Dhdl_ir.Op

let esc s = String.concat "\\\"" (String.split_on_char '"' s)

let emit (d : Ir.design) =
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph %s {\n" (String.map (fun c -> if c = '-' || c = '.' then '_' else c) d.d_name);
  out "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  (* Memories as global nodes. *)
  List.iter
    (fun m ->
      let shape, color =
        match m.Ir.mem_kind with
        | Ir.Offchip -> ("cylinder", "lightblue")
        | Ir.Bram -> ("box3d", "lightyellow")
        | Ir.Reg -> ("ellipse", "lightgrey")
        | Ir.Queue -> ("house", "lightpink")
      in
      out "  mem%d [label=\"%s%s\", shape=%s, style=filled, fillcolor=%s];\n" m.Ir.mem_id
        (esc m.Ir.mem_name)
        (if m.Ir.mem_double then " (x2)" else "")
        shape color)
    d.d_mems;
  let fresh =
    let n = ref 0 in
    fun () ->
      incr n;
      !n
  in
  let rec walk parent ctrl =
    let cid = fresh () in
    (match ctrl with
    | Ir.Pipe { loop; body; reduce } ->
      out "  subgraph cluster_%d {\n    label=\"Pipe %s (par=%d)\";\n    style=rounded;\n" cid
        (esc loop.Ir.lp_label) loop.Ir.lp_par;
      (* One node per statement; Value edges inside the body. *)
      let node_of = Hashtbl.create 16 in
      List.iteri
        (fun i stmt ->
          let nid = Printf.sprintf "s%d_%d" cid i in
          let label, def =
            match stmt with
            | Ir.Sop { dst; op; _ } -> (Printf.sprintf "v%d = %s" dst (Op.name op), Some dst)
            | Ir.Sload { dst; mem; _ } -> (Printf.sprintf "v%d = %s[..]" dst mem.Ir.mem_name, Some dst)
            | Ir.Sstore { mem; _ } -> (Printf.sprintf "%s[..] = .." mem.Ir.mem_name, None)
            | Ir.Sread_reg { dst; reg } -> (Printf.sprintf "v%d = %s" dst reg.Ir.mem_name, Some dst)
            | Ir.Swrite_reg { reg; _ } -> (Printf.sprintf "%s := .." reg.Ir.mem_name, None)
            | Ir.Spush { queue; _ } -> (Printf.sprintf "%s.push" queue.Ir.mem_name, None)
            | Ir.Spop { dst; queue } -> (Printf.sprintf "v%d = %s.pop" dst queue.Ir.mem_name, Some dst)
          in
          out "    %s [label=\"%s\"];\n" nid (esc label);
          Option.iter (fun dst -> Hashtbl.replace node_of dst nid) def)
        body;
      List.iteri
        (fun i stmt ->
          let nid = Printf.sprintf "s%d_%d" cid i in
          let operands =
            match stmt with
            | Ir.Sop { args; _ } -> args
            | Ir.Sload { addr; _ } -> addr
            | Ir.Sstore { addr; data; _ } -> data :: addr
            | Ir.Sread_reg _ | Ir.Spop _ -> []
            | Ir.Swrite_reg { data; _ } | Ir.Spush { data; _ } -> [ data ]
          in
          List.iter
            (function
              | Ir.Value v -> (
                match Hashtbl.find_opt node_of v with
                | Some src -> out "    %s -> %s;\n" src nid
                | None -> ())
              | Ir.Const _ | Ir.Iter _ -> ())
            operands;
          (* Memory access edges (dashed, outside the cluster). *)
          match stmt with
          | Ir.Sload { mem; _ } | Ir.Spop { queue = mem; _ } ->
            out "    mem%d -> %s [style=dashed, constraint=false];\n" mem.Ir.mem_id nid
          | Ir.Sstore { mem; _ } | Ir.Spush { queue = mem; _ } ->
            out "    %s -> mem%d [style=dashed, constraint=false];\n" nid mem.Ir.mem_id
          | Ir.Sread_reg { reg; _ } ->
            out "    mem%d -> %s [style=dashed, constraint=false];\n" reg.Ir.mem_id nid
          | Ir.Swrite_reg { reg; _ } ->
            out "    %s -> mem%d [style=dashed, constraint=false];\n" nid reg.Ir.mem_id
          | Ir.Sop _ -> ())
        body;
      Option.iter
        (fun r ->
          out "    red%d [label=\"reduce %s\", shape=invtriangle];\n" cid (Op.name r.Ir.sr_op);
          out "    red%d -> mem%d [style=dashed, constraint=false];\n" cid r.Ir.sr_out.Ir.mem_id)
        reduce;
      out "  }\n"
    | Ir.Loop { loop; pipelined; stages; reduce } ->
      out "  subgraph cluster_%d {\n    label=\"%s %s%s\";\n    style=rounded;\n" cid
        (if pipelined then "MetaPipe" else "Sequential")
        (esc loop.Ir.lp_label)
        (if loop.Ir.lp_par > 1 then Printf.sprintf " (par=%d)" loop.Ir.lp_par else "");
      List.iter (walk (Some cid)) stages;
      Option.iter
        (fun r ->
          out "    red%d [label=\"reduce %s: %s -> %s\", shape=invtriangle];\n" cid
            (Op.name r.Ir.mr_op) (esc r.Ir.mr_src.Ir.mem_name) (esc r.Ir.mr_dst.Ir.mem_name))
        reduce;
      out "  }\n"
    | Ir.Parallel { par_label; stages } ->
      out "  subgraph cluster_%d {\n    label=\"Parallel %s\";\n    style=dashed;\n" cid
        (esc par_label);
      List.iter (walk (Some cid)) stages;
      out "  }\n"
    | Ir.Tile_load { src; dst; par; _ } ->
      out "  t%d [label=\"TileLd par=%d\", shape=rarrow];\n" cid par;
      out "  mem%d -> t%d [style=bold];\n  t%d -> mem%d [style=bold];\n" src.Ir.mem_id cid cid
        dst.Ir.mem_id
    | Ir.Tile_store { dst; src; par; _ } ->
      out "  t%d [label=\"TileSt par=%d\", shape=larrow];\n" cid par;
      out "  mem%d -> t%d [style=bold];\n  t%d -> mem%d [style=bold];\n" src.Ir.mem_id cid cid
        dst.Ir.mem_id);
    ignore parent
  in
  walk None d.d_top;
  out "}\n";
  Buffer.contents buf
