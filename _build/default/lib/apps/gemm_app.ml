(** Tiled single-precision matrix multiply (Table II: 1536 x 1536).
    Compute-heavy with high temporal/spatial locality: Pareto-optimal
    designs hold large 2-D chunks on chip (Section V.C.1). Parameters: the
    three tile sizes, dot-product parallelization, and MetaPipe toggles on
    the k-accumulation and row loops. *)

module Ir = Dhdl_ir.Ir
module Op = Dhdl_ir.Op
module Dtype = Dhdl_ir.Dtype
module B = Dhdl_ir.Builder
module Space = Dhdl_dse.Space
module Intmath = Dhdl_util.Intmath

let generate ~sizes ~params =
  let n = App.size sizes "n" in
  let m = App.size sizes "m" in
  let k = App.size sizes "k" in
  let tn = App.get params "tileN" 32 in
  let tm = App.get params "tileM" 32 in
  let tk = App.get params "tileK" 32 in
  let par = App.get params "par" 4 in
  let meta_k = App.get params "metaK" 1 <> 0 in
  let meta_r = App.get params "metaR" 0 <> 0 in
  assert (n mod tn = 0 && m mod tm = 0 && k mod tk = 0);
  let b = B.create ~params "gemm" in
  let a = B.offchip b "a" Dtype.float32 [ n; k ] in
  let bm = B.offchip b "b" Dtype.float32 [ k; m ] in
  let c = B.offchip b "c" Dtype.float32 [ n; m ] in
  let at = B.bram b "aT" Dtype.float32 [ tn; tk ] in
  let bt = B.bram b "bT" Dtype.float32 [ tk; tm ] in
  let cacc = B.bram b "cAcc" Dtype.float32 [ tn; tm ] in
  (* Fresh accumulator tile per (i, j) output tile. *)
  let zero =
    B.pipe ~label:"zeroC"
      ~counters:[ ("zi", 0, tn, 1); ("zj", 0, tm, 1) ]
      ~par
      (fun pb -> B.store pb cacc [ B.iter "zi"; B.iter "zj" ] (B.const 0.0))
  in
  (* Rank-tk update of one output row: the innermost iterator jj rotates the
     cAcc address, so the read-add-write accumulation pipelines at II = 1. *)
  let row_update =
    B.pipe ~label:"macRow"
      ~counters:[ ("kk", 0, tk, 1); ("jj", 0, tm, 1) ]
      ~par
      (fun pb ->
        let av = B.load pb at [ B.iter "ii"; B.iter "kk" ] in
        let bv = B.load pb bt [ B.iter "kk"; B.iter "jj" ] in
        let cv = B.load pb cacc [ B.iter "ii"; B.iter "jj" ] in
        B.store pb cacc [ B.iter "ii"; B.iter "jj" ] (B.add pb cv (B.mul pb av bv)))
  in
  let tile_compute = B.metapipe ~label:"rows" ~counters:[ ("ii", 0, tn, 1) ] [ row_update ] in
  let k_loop =
    B.metapipe ~label:"kTiles"
      ~counters:[ ("kt", 0, k, tk) ]
      ~pipelined:meta_k
      [
        B.parallel ~label:"loadAB"
          [
            B.tile_load ~src:a ~dst:at ~offsets:[ B.iter "i"; B.iter "kt" ] ~par ();
            B.tile_load ~src:bm ~dst:bt ~offsets:[ B.iter "kt"; B.iter "j" ] ~par ();
          ];
        tile_compute;
      ]
  in
  let j_loop =
    B.metapipe ~label:"colTiles"
      ~counters:[ ("j", 0, m, tm) ]
      ~pipelined:false
      [ zero; k_loop; B.tile_store ~dst:c ~src:cacc ~offsets:[ B.iter "i"; B.iter "j" ] ~par () ]
  in
  let top =
    B.metapipe ~label:"rowTiles" ~counters:[ ("i", 0, n, tn) ] ~pipelined:meta_r [ j_loop ]
  in
  B.finish b ~top

let space sizes =
  let n = App.size sizes "n" in
  let m = App.size sizes "m" in
  let k = App.size sizes "k" in
  let tiles extent =
    let ds = List.filter (fun t -> t >= 8 && t <= 512) (Intmath.divisors extent) in
    if ds = [] then [ extent ] else ds
  in
  Space.make ~name:"gemm"
    ~dims:
      [
        ("tileN", tiles n);
        ("tileM", tiles m);
        ("tileK", tiles k);
        ("par", [ 1; 2; 4; 8; 16; 32; 64 ]);
        ("metaK", [ 0; 1 ]);
        ("metaR", [ 0; 1 ]);
      ]
    ~legal:(fun p ->
      let tn = App.get p "tileN" 0 and tm = App.get p "tileM" 0 in
      let tk = App.get p "tileK" 0 and par = App.get p "par" 1 in
      let words = (tn * tk) + (tk * tm) + (tn * tm) in
      words <= 2 * Space.mem_limit_words && tm mod par = 0)
    ()

let app =
  {
    App.name = "gemm";
    description = "Tiled matrix multiplication";
    paper_sizes = [ ("n", 1_536); ("m", 1_536); ("k", 1_536) ];
    test_sizes = [ ("n", 16); ("m", 12); ("k", 8) ];
    default_params =
      (fun sizes ->
        let n = App.size sizes "n" and m = App.size sizes "m" and k = App.size sizes "k" in
        [
          ("tileN", min 32 n);
          ("tileM", min 4 m);
          ("tileK", min 8 k);
          ("par", min 4 (min 8 k));
          ("metaK", 1);
          ("metaR", 0);
        ]);
    space;
    generate;
    cpu_workload =
      (fun sizes ->
        Dhdl_cpu.Cost_model.gemm ~n:(App.size sizes "n") ~m:(App.size sizes "m")
          ~k:(App.size sizes "k"));
  }
