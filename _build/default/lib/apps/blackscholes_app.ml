(** Black-Scholes-Merton option pricing (Table II: 9,995,328 options).
    A long feed-forward floating-point pipeline (exp/log/sqrt/div chains)
    that the FPGA executes at one result per cycle per lane — the paper's
    best speedup (16.7x). Parameters: tile size, lane count, MetaPipe
    toggle. *)

module Ir = Dhdl_ir.Ir
module Op = Dhdl_ir.Op
module Dtype = Dhdl_ir.Dtype
module B = Dhdl_ir.Builder
module Space = Dhdl_dse.Space
module Intmath = Dhdl_util.Intmath

let rate = 0.02
let volatility = 0.30

(* The PARSEC polynomial CNDF, emitted as primitive nodes. *)
let emit_cndf pb x =
  let abs_x = B.op pb Op.Abs [ x ] in
  let x2 = B.mul pb abs_x abs_x in
  let neg_half_x2 = B.mul pb x2 (B.const (-0.5)) in
  let exp_term = B.op pb Op.Exp [ neg_half_x2 ] in
  let n_prime = B.mul pb exp_term (B.const 0.39894228040143270286) in
  let kx = B.mul pb abs_x (B.const 0.2316419) in
  let k_denom = B.add pb kx (B.const 1.0) in
  let k = B.div pb (B.const 1.0) k_denom in
  (* Horner evaluation of the 5-term polynomial. *)
  let poly = B.mul pb k (B.const 1.330274429) in
  let poly = B.add pb poly (B.const (-1.821255978)) in
  let poly = B.mul pb poly k in
  let poly = B.add pb poly (B.const 1.781477937) in
  let poly = B.mul pb poly k in
  let poly = B.add pb poly (B.const (-0.356563782)) in
  let poly = B.mul pb poly k in
  let poly = B.add pb poly (B.const 0.319381530) in
  let k_sum = B.mul pb poly k in
  let tail = B.mul pb n_prime k_sum in
  let v = B.sub pb (B.const 1.0) tail in
  let one_minus = B.sub pb (B.const 1.0) v in
  let negative = B.op pb Op.Lt [ x; B.const 0.0 ] in
  B.mux pb negative one_minus v

let generate ~sizes ~params =
  let n = App.size sizes "n" in
  let tile = App.get params "tile" 1024 in
  let par = App.get params "par" 2 in
  let meta = App.get params "meta" 1 <> 0 in
  assert (n mod tile = 0);
  let b = B.create ~params "blackscholes" in
  let spot = B.offchip b "spot" Dtype.float32 [ n ] in
  let strike = B.offchip b "strike" Dtype.float32 [ n ] in
  let time = B.offchip b "time" Dtype.float32 [ n ] in
  let otype = B.offchip b "otype" Dtype.float32 [ n ] in
  let price = B.offchip b "price" Dtype.float32 [ n ] in
  let spot_t = B.bram b "spotT" Dtype.float32 [ tile ] in
  let strike_t = B.bram b "strikeT" Dtype.float32 [ tile ] in
  let time_t = B.bram b "timeT" Dtype.float32 [ tile ] in
  let otype_t = B.bram b "otypeT" Dtype.float32 [ tile ] in
  let price_t = B.bram b "priceT" Dtype.float32 [ tile ] in
  let compute =
    B.pipe ~label:"bsm" ~counters:[ ("i", 0, tile, 1) ] ~par (fun pb ->
        let s = B.load pb spot_t [ B.iter "i" ] in
        let k = B.load pb strike_t [ B.iter "i" ] in
        let t = B.load pb time_t [ B.iter "i" ] in
        let ot = B.load pb otype_t [ B.iter "i" ] in
        let sqrt_t = B.op pb Op.Sqrt [ t ] in
        let log_sk = B.op pb Op.Log [ B.div pb s k ] in
        let drift = B.const (rate +. (0.5 *. volatility *. volatility)) in
        let num = B.add pb log_sk (B.mul pb drift t) in
        let den = B.mul pb (B.const volatility) sqrt_t in
        let d1 = B.div pb num den in
        let d2 = B.sub pb d1 den in
        let n_d1 = emit_cndf pb d1 in
        let n_d2 = emit_cndf pb d2 in
        let neg_rt = B.mul pb (B.const (-.rate)) t in
        let discounted = B.mul pb k (B.op pb Op.Exp [ neg_rt ]) in
        let call = B.sub pb (B.mul pb s n_d1) (B.mul pb discounted n_d2) in
        let put_left = B.mul pb discounted (B.sub pb (B.const 1.0) n_d2) in
        let put_right = B.mul pb s (B.sub pb (B.const 1.0) n_d1) in
        let put = B.sub pb put_left put_right in
        let is_put = B.op pb Op.Neq [ ot; B.const 0.0 ] in
        B.store pb price_t [ B.iter "i" ] (B.mux pb is_put put call))
  in
  let top =
    B.metapipe ~label:"tiles"
      ~counters:[ ("t", 0, n, tile) ]
      ~pipelined:meta
      [
        B.parallel ~label:"loads"
          [
            B.tile_load ~src:spot ~dst:spot_t ~offsets:[ B.iter "t" ] ~par ();
            B.tile_load ~src:strike ~dst:strike_t ~offsets:[ B.iter "t" ] ~par ();
            B.tile_load ~src:time ~dst:time_t ~offsets:[ B.iter "t" ] ~par ();
            B.tile_load ~src:otype ~dst:otype_t ~offsets:[ B.iter "t" ] ~par ();
          ];
        compute;
        B.tile_store ~dst:price ~src:price_t ~offsets:[ B.iter "t" ] ~par ();
      ]
  in
  B.finish b ~top

let space sizes =
  let n = App.size sizes "n" in
  let tiles =
    let ds = List.filter (fun t -> t >= 64 && t <= 16_384) (Intmath.divisors n) in
    if ds = [] then [ n ] else ds
  in
  Space.make ~name:"blackscholes"
    ~dims:[ ("tile", tiles); ("par", [ 1; 2; 4; 8; 16 ]); ("meta", [ 0; 1 ]) ]
    ~legal:(fun p ->
      let tile = App.get p "tile" 0 and par = App.get p "par" 1 in
      tile mod par = 0)
    ()

let app =
  {
    App.name = "blackscholes";
    description = "Black-Scholes-Merton option pricing";
    paper_sizes = [ ("n", 9_995_328) ];
    test_sizes = [ ("n", 256) ];
    default_params =
      (fun sizes ->
        let n = App.size sizes "n" in
        [ ("tile", App.divisor_tile ~n ~cap:2048 ~par:4); ("par", 4); ("meta", 1) ]);
    space;
    generate;
    cpu_workload = (fun sizes -> Dhdl_cpu.Cost_model.blackscholes ~n:(App.size sizes "n"));
  }
