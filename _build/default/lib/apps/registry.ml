let all =
  [
    Dot_product.app;
    Outer_product.app;
    Gemm_app.app;
    Tpchq6_app.app;
    Blackscholes_app.app;
    Gda_app.app;
    Kmeans_app.app;
  ]

let find name =
  match List.find_opt (fun a -> a.App.name = name) all with
  | Some a -> a
  | None -> raise Not_found

let names = List.map (fun a -> a.App.name) all
