(** TPC-H Query 6 (Table II: 18,720,000 records): stream four column arrays,
    filter by date / discount / quantity predicates, and reduce
    price * discount over the surviving rows. Data-dependent branches become
    multiplexers in the dataflow pipeline (Section V.D). *)

module Ir = Dhdl_ir.Ir
module Op = Dhdl_ir.Op
module Dtype = Dhdl_ir.Dtype
module B = Dhdl_ir.Builder
module Space = Dhdl_dse.Space
module Intmath = Dhdl_util.Intmath

let generate ~sizes ~params =
  let n = App.size sizes "n" in
  let tile = App.get params "tile" 2048 in
  let par = App.get params "par" 4 in
  let meta = App.get params "meta" 1 <> 0 in
  assert (n mod tile = 0);
  let b = B.create ~params "tpchq6" in
  let price = B.offchip b "price" Dtype.float32 [ n ] in
  let discount = B.offchip b "discount" Dtype.float32 [ n ] in
  let quantity = B.offchip b "quantity" Dtype.float32 [ n ] in
  let date = B.offchip b "date" Dtype.float32 [ n ] in
  let pt = B.bram b "priceT" Dtype.float32 [ tile ] in
  let dt = B.bram b "discountT" Dtype.float32 [ tile ] in
  let qt = B.bram b "quantityT" Dtype.float32 [ tile ] in
  let st = B.bram b "dateT" Dtype.float32 [ tile ] in
  let partial = B.reg b "partial" Dtype.float32 in
  let revenue = B.reg b "revenue" Dtype.float32 in
  let filter_reduce =
    B.reduce_pipe ~label:"filter" ~counters:[ ("i", 0, tile, 1) ] ~par ~op:Op.Add ~out:partial
      (fun pb ->
        let pr = B.load pb pt [ B.iter "i" ] in
        let di = B.load pb dt [ B.iter "i" ] in
        let qu = B.load pb qt [ B.iter "i" ] in
        let da = B.load pb st [ B.iter "i" ] in
        let date_ok_lo = B.op pb Op.Ge [ da; B.const 5.0 ] in
        let date_ok_hi = B.op pb Op.Lt [ da; B.const 6.0 ] in
        let disc_lo = B.op pb Op.Ge [ di; B.const 0.05 ] in
        let disc_hi = B.op pb Op.Le [ di; B.const 0.07 ] in
        let qty_ok = B.op pb Op.Lt [ qu; B.const 24.0 ] in
        let c1 = B.op pb Op.And [ date_ok_lo; date_ok_hi ] in
        let c2 = B.op pb Op.And [ disc_lo; disc_hi ] in
        let c3 = B.op pb Op.And [ c1; c2 ] in
        let cond = B.op pb Op.And [ c3; qty_ok ] in
        let pd = B.mul pb pr di in
        B.mux pb cond pd (B.const 0.0))
  in
  let top =
    B.metapipe ~label:"tiles"
      ~counters:[ ("t", 0, n, tile) ]
      ~pipelined:meta
      ~reduce:(Op.Add, partial, revenue)
      [
        B.parallel ~label:"loads"
          [
            B.tile_load ~src:price ~dst:pt ~offsets:[ B.iter "t" ] ~par ();
            B.tile_load ~src:discount ~dst:dt ~offsets:[ B.iter "t" ] ~par ();
            B.tile_load ~src:quantity ~dst:qt ~offsets:[ B.iter "t" ] ~par ();
            B.tile_load ~src:date ~dst:st ~offsets:[ B.iter "t" ] ~par ();
          ];
        filter_reduce;
      ]
  in
  B.finish b ~top

let space sizes =
  let n = App.size sizes "n" in
  let tiles =
    let ds = List.filter (fun t -> t >= 64 && t <= 16_384) (Intmath.divisors n) in
    if ds = [] then [ n ] else ds
  in
  Space.make ~name:"tpchq6"
    ~dims:[ ("tile", tiles); ("par", [ 1; 2; 4; 8; 16; 32 ]); ("meta", [ 0; 1 ]) ]
    ~legal:(fun p ->
      let tile = App.get p "tile" 0 and par = App.get p "par" 1 in
      tile mod par = 0)
    ()

let app =
  {
    App.name = "tpchq6";
    description = "TPC-H Query 6";
    paper_sizes = [ ("n", 18_720_000) ];
    test_sizes = [ ("n", 512) ];
    default_params =
      (fun sizes ->
        let n = App.size sizes "n" in
        [ ("tile", App.divisor_tile ~n ~cap:2048 ~par:8); ("par", 8); ("meta", 1) ]);
    space;
    generate;
    cpu_workload = (fun sizes -> Dhdl_cpu.Cost_model.tpchq6 ~n:(App.size sizes "n"));
  }
