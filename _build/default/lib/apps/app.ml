type sizes = (string * int) list
type params = (string * int) list

type t = {
  name : string;
  description : string;
  paper_sizes : sizes;
  test_sizes : sizes;
  default_params : sizes -> params;
  space : sizes -> Dhdl_dse.Space.t;
  generate : sizes:sizes -> params:params -> Dhdl_ir.Ir.design;
  cpu_workload : sizes -> Dhdl_cpu.Cost_model.workload;
}

let size sizes name =
  match List.assoc_opt name sizes with
  | Some v -> v
  | None -> failwith (Printf.sprintf "missing dataset dimension %S" name)

let get params name default =
  match List.assoc_opt name params with Some v -> v | None -> default

let generate_default t sizes = t.generate ~sizes ~params:(t.default_params sizes)

(* Largest divisor of [n] that is <= [cap] and divisible by [par]; used by
   default design points so they are legal at any dataset size. *)
let divisor_tile ~n ~cap ~par =
  let ds = Dhdl_util.Intmath.divisors_up_to n cap in
  match List.rev (List.filter (fun d -> d mod par = 0) ds) with
  | d :: _ -> d
  | [] -> ( match List.rev ds with d :: _ -> d | [] -> n)
