lib/apps/registry.ml: App Blackscholes_app Dot_product Gda_app Gemm_app Kmeans_app List Outer_product Tpchq6_app
