lib/apps/blackscholes_app.mli: App Dhdl_dse Dhdl_ir
