lib/apps/gda_app.mli: App Dhdl_dse Dhdl_ir
