lib/apps/app.mli: Dhdl_cpu Dhdl_dse Dhdl_ir
