lib/apps/gemm_app.mli: App Dhdl_dse Dhdl_ir
