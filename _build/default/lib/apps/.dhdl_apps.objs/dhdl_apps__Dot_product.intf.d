lib/apps/dot_product.mli: App Dhdl_dse Dhdl_ir
