lib/apps/gemm_app.ml: App Dhdl_cpu Dhdl_dse Dhdl_ir Dhdl_util List
