lib/apps/dot_product.ml: App Dhdl_cpu Dhdl_dse Dhdl_ir Dhdl_util List
