lib/apps/kmeans_app.mli: App Dhdl_dse Dhdl_ir
