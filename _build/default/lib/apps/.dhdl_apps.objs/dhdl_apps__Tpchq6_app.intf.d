lib/apps/tpchq6_app.mli: App Dhdl_dse Dhdl_ir
