lib/apps/app.ml: Dhdl_cpu Dhdl_dse Dhdl_ir Dhdl_util List Printf
