lib/apps/outer_product.mli: App Dhdl_dse Dhdl_ir
