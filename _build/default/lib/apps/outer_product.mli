(** Vector outer product (Table II: 38,400 x 38,400): BRAM- and memory-bound
    (quadratic output tiles). Parameters: [tileA], [tileB], [par], and the
    [metaA]/[metaB] MetaPipe toggles of the two loop levels. *)

val generate : sizes:App.sizes -> params:App.params -> Dhdl_ir.Ir.design
val space : App.sizes -> Dhdl_dse.Space.t
val app : App.t
