(** Vector dot product (Table II: 187,200,000 elements) — the canonical
    memory-bound streaming reduction. Design parameters: tile size, inner
    reduction parallelization, and the outer MetaPipe toggle that overlaps
    tile loads with the reduction tree. *)

module Ir = Dhdl_ir.Ir
module Op = Dhdl_ir.Op
module Dtype = Dhdl_ir.Dtype
module B = Dhdl_ir.Builder
module Space = Dhdl_dse.Space
module Intmath = Dhdl_util.Intmath

let generate ~sizes ~params =
  let n = App.size sizes "n" in
  let tile = App.get params "tile" 1024 in
  let par = App.get params "par" 4 in
  let meta = App.get params "meta" 1 <> 0 in
  assert (n mod tile = 0);
  let b = B.create ~params "dotproduct" in
  let x = B.offchip b "x" Dtype.float32 [ n ] in
  let y = B.offchip b "y" Dtype.float32 [ n ] in
  let xt = B.bram b "xT" Dtype.float32 [ tile ] in
  let yt = B.bram b "yT" Dtype.float32 [ tile ] in
  let partial = B.reg b "partial" Dtype.float32 in
  let result = B.reg b "result" Dtype.float32 in
  let inner =
    B.reduce_pipe ~label:"dot" ~counters:[ ("i", 0, tile, 1) ] ~par ~op:Op.Add ~out:partial
      (fun pb ->
        let xv = B.load pb xt [ B.iter "i" ] in
        let yv = B.load pb yt [ B.iter "i" ] in
        B.mul pb xv yv)
  in
  let top =
    B.metapipe ~label:"tiles"
      ~counters:[ ("t", 0, n, tile) ]
      ~pipelined:meta
      ~reduce:(Op.Add, partial, result)
      [
        B.parallel ~label:"loads"
          [
            B.tile_load ~src:x ~dst:xt ~offsets:[ B.iter "t" ] ~par ();
            B.tile_load ~src:y ~dst:yt ~offsets:[ B.iter "t" ] ~par ();
          ];
        inner;
      ]
  in
  B.finish b ~top

let space sizes =
  let n = App.size sizes "n" in
  let tiles =
    List.filter (fun t -> t >= 64 && t <= Space.mem_limit_words) (Intmath.divisors n)
  in
  let tiles = if tiles = [] then [ n ] else tiles in
  Space.make ~name:"dotproduct"
    ~dims:[ ("tile", tiles); ("par", [ 1; 2; 4; 8; 16; 32; 64 ]); ("meta", [ 0; 1 ]) ]
    ~legal:(fun p ->
      let tile = App.get p "tile" 0 and par = App.get p "par" 1 in
      tile mod par = 0)
    ()

let app =
  {
    App.name = "dotproduct";
    description = "Vector dot product";
    paper_sizes = [ ("n", 187_200_000) ];
    test_sizes = [ ("n", 1_024) ];
    default_params =
      (fun sizes ->
        let n = App.size sizes "n" in
        [ ("tile", App.divisor_tile ~n ~cap:2048 ~par:8); ("par", 8); ("meta", 1) ]);
    space;
    generate;
    cpu_workload = (fun sizes -> Dhdl_cpu.Cost_model.dotproduct ~n:(App.size sizes "n"));
  }
