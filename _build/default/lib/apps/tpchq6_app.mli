(** TPC-H Query 6 (Table II: 18,720,000 records): filtered streaming
    reduction; predicates lower to multiplexers. Parameters: [tile], [par],
    [meta]. *)

val generate : sizes:App.sizes -> params:App.params -> Dhdl_ir.Ir.design
val space : App.sizes -> Dhdl_dse.Space.t
val app : App.t
