(** The benchmark suite of Table II. *)

val all : App.t list
(** All seven benchmarks, in the paper's order: dotproduct, outerprod,
    gemm, tpchq6, blackscholes, gda, kmeans. *)

val find : string -> App.t
(** Lookup by name. Raises [Not_found]. *)

val names : string list
