(** k-means clustering (Table II: 960,000 points, k = 8, 384 dims): one
    Lloyd iteration. Distance evaluation against every centroid, an argmin
    carried through registers, and data-dependent read-modify-write
    accumulation of per-cluster sums and counts — the access pattern
    (groupBy-style scatter) that DDDG-based tools cannot pipeline
    (Section II). ALM-bound: the K x D distance lanes dominate. *)

module Ir = Dhdl_ir.Ir
module Op = Dhdl_ir.Op
module Dtype = Dhdl_ir.Dtype
module B = Dhdl_ir.Builder
module Space = Dhdl_dse.Space
module Intmath = Dhdl_util.Intmath

let generate ~sizes ~params =
  let points = App.size sizes "n" in
  let dims = App.size sizes "d" in
  let k = App.size sizes "k" in
  let tile = App.get params "tile" 64 in
  let pd = App.get params "parDist" 4 in
  let pa = App.get params "parAcc" 2 in
  let pp = App.get params "parPoints" 1 in
  let meta = App.get params "meta" 1 <> 0 in
  assert (points mod tile = 0);
  let b = B.create ~params "kmeans" in
  let data = B.offchip b "points" Dtype.float32 [ points; dims ] in
  let cents = B.offchip b "centroids" Dtype.float32 [ k; dims ] in
  let out_sums = B.offchip b "sums" Dtype.float32 [ k; dims ] in
  let out_counts = B.offchip b "counts" Dtype.float32 [ k ] in
  let ct = B.bram b "centT" Dtype.float32 [ k; dims ] in
  let xt = B.bram b "xT" Dtype.float32 [ tile; dims ] in
  let sums = B.bram b "sumsT" Dtype.float32 [ k; dims ] in
  let counts = B.bram b "countsT" Dtype.float32 [ k ] in
  let distb = B.bram b "distB" Dtype.float32 [ k ] in
  let best_dist = B.reg b "bestDist" Dtype.float32 in
  let best_idx = B.reg b "bestIdx" Dtype.float32 in
  (* Clear the per-point distance accumulators and argmin registers. *)
  let reset =
    B.pipe ~label:"reset" ~counters:[ ("zc", 0, k, 1) ] (fun pb ->
        B.store pb distb [ B.iter "zc" ] (B.const 0.0);
        B.write_reg pb best_dist (B.const infinity);
        B.write_reg pb best_idx (B.const 0.0))
  in
  (* Squared distances of point rr to every centroid, accumulated in one
     deep pipeline: the innermost iterator c rotates the distB address, so
     the read-add-write chain runs at II = 1 across all K x D terms. *)
  let dist_pipe =
    B.pipe ~label:"dist"
      ~counters:[ ("dd", 0, dims, 1); ("c", 0, k, 1) ]
      ~par:pd
      (fun pb ->
        let xv = B.load pb xt [ B.iter "rr"; B.iter "dd" ] in
        let cv = B.load pb ct [ B.iter "c"; B.iter "dd" ] in
        let diff = B.sub pb xv cv in
        let sq = B.mul pb diff diff in
        let cur = B.load pb distb [ B.iter "c" ] in
        B.store pb distb [ B.iter "c" ] (B.add pb cur sq))
  in
  (* Argmin sweep over the K accumulated distances. *)
  let select =
    B.pipe ~label:"select" ~counters:[ ("c", 0, k, 1) ] (fun pb ->
        let d = B.load pb distb [ B.iter "c" ] in
        let bd = B.read_reg pb best_dist in
        let closer = B.op pb Op.Lt [ d; bd ] in
        B.write_reg pb best_dist (B.mux pb closer d bd);
        let bi = B.read_reg pb best_idx in
        B.write_reg pb best_idx (B.mux pb closer (B.iter "c") bi))
  in
  let centroid_loop =
    B.metapipe ~label:"centroids" ~counters:[] ~pipelined:false [ dist_pipe; select ]
  in
  (* Scatter-accumulate the point into its winning cluster. *)
  let accumulate =
    B.pipe ~label:"accum" ~counters:[ ("dd", 0, dims, 1) ] ~par:pa (fun pb ->
        let idx = B.read_reg pb best_idx in
        let cur = B.load pb sums [ idx; B.iter "dd" ] in
        let xv = B.load pb xt [ B.iter "rr"; B.iter "dd" ] in
        B.store pb sums [ idx; B.iter "dd" ] (B.add pb cur xv))
  in
  let count_up =
    B.pipe ~label:"count" ~counters:[] (fun pb ->
        let idx = B.read_reg pb best_idx in
        let cur = B.load pb counts [ idx ] in
        B.store pb counts [ idx ] (B.add pb cur (B.const 1.0)))
  in
  (* Outer-loop parallelization: [pp] replicas of the whole per-point
     datapath process the tile's points concurrently (Section III.B.3's
     node replication at an outer level). *)
  let point_loop =
    B.metapipe ~label:"pointLoop" ~counters:[ ("rr", 0, tile, 1) ] ~par:pp ~pipelined:false
      [ reset; centroid_loop; accumulate; count_up ]
  in
  let tile_loop =
    B.metapipe ~label:"tiles"
      ~counters:[ ("t", 0, points, tile) ]
      ~pipelined:meta
      [
        B.tile_load ~src:data ~dst:xt ~offsets:[ B.iter "t"; B.const 0.0 ] ~par:pd ();
        point_loop;
      ]
  in
  let top =
    B.sequential_block ~label:"main"
      [
        B.tile_load ~src:cents ~dst:ct ~offsets:[ B.const 0.0; B.const 0.0 ] ~par:1 ();
        tile_loop;
        B.tile_store ~dst:out_sums ~src:sums ~offsets:[ B.const 0.0; B.const 0.0 ] ~par:pa ();
        B.tile_store ~dst:out_counts ~src:counts ~offsets:[ B.const 0.0 ] ~par:1 ();
      ]
  in
  B.finish b ~top

let space sizes =
  let points = App.size sizes "n" in
  let dims = App.size sizes "d" in
  let tiles =
    let ds = List.filter (fun t -> t >= 16 && t <= 2048) (Intmath.divisors points) in
    if ds = [] then [ points ] else ds
  in
  let pars = List.filter (fun p -> p <= 32) (Intmath.divisors dims) in
  Space.make ~name:"kmeans"
    ~dims:
      [
        ("tile", tiles);
        ("parDist", pars);
        ("parAcc", List.filter (fun p -> p <= 8) pars);
        ("parPoints", [ 1; 2; 4; 8; 16; 32 ]);
        ("meta", [ 0; 1 ]);
      ]
    ~legal:(fun p ->
      let tile = App.get p "tile" 0 and pp = App.get p "parPoints" 1 in
      tile * dims <= Space.mem_limit_words && tile mod pp = 0)
    ()

let app =
  {
    App.name = "kmeans";
    description = "k-means clustering";
    paper_sizes = [ ("n", 960_000); ("k", 8); ("d", 384) ];
    test_sizes = [ ("n", 64); ("k", 4); ("d", 8) ];
    default_params =
      (fun sizes ->
        let points = App.size sizes "n" in
        [ ("tile", min 32 points); ("parDist", 4); ("parAcc", 2); ("parPoints", 2); ("meta", 1) ]);
    space;
    generate;
    cpu_workload =
      (fun sizes ->
        Dhdl_cpu.Cost_model.kmeans ~points:(App.size sizes "n") ~dims:(App.size sizes "d")
          ~k:(App.size sizes "k"));
  }
