(** Benchmark application interface.

    Each benchmark of Table II is a parameterized DHDL program: a function
    from (dataset sizes, design parameters) to a design instance, together
    with its design space for exploration and its CPU workload model for the
    Figure 6 comparison. *)

type sizes = (string * int) list
type params = (string * int) list

type t = {
  name : string;
  description : string;
  paper_sizes : sizes;  (** Dataset sizes from Table II. *)
  test_sizes : sizes;  (** Scaled-down sizes for functional validation. *)
  default_params : sizes -> params;  (** A sensible mid-range design point. *)
  space : sizes -> Dhdl_dse.Space.t;
  generate : sizes:sizes -> params:params -> Dhdl_ir.Ir.design;
  cpu_workload : sizes -> Dhdl_cpu.Cost_model.workload;
}

val size : sizes -> string -> int
(** Look up a dimension; raises [Failure] with a helpful message. *)

val get : params -> string -> int -> int
(** [get params name default] with a default for omitted parameters. *)

val generate_default : t -> sizes -> Dhdl_ir.Ir.design
(** Instantiate at the default parameters. *)

val divisor_tile : n:int -> cap:int -> par:int -> int
(** Largest divisor of [n] at most [cap] divisible by [par] (falls back to
    the largest divisor, then [n]); keeps default design points legal. *)
