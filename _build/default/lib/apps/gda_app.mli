(** Gaussian discriminant analysis (Table II: 360,000 x 96) — the paper's
    running example (Figures 2-4). Parameters: [tile] (row tile), [parP1],
    [parP2], [metaM1], [metaM2] (exactly Figure 3's knobs). *)

val generate : sizes:App.sizes -> params:App.params -> Dhdl_ir.Ir.design
val space : App.sizes -> Dhdl_dse.Space.t
val app : App.t
