(** Gaussian discriminant analysis (Table II: R = 360,000 rows, D = 96) —
    the paper's running example (Figures 2-4). Two nested MetaPipes with
    element-wise BRAM reductions; compute bound with high spatial locality.
    Parameters: row tile size, the two pipe parallelizations, and the two
    MetaPipe toggles (M1toggle / M2toggle of Figure 3). *)

module Ir = Dhdl_ir.Ir
module Op = Dhdl_ir.Op
module Dtype = Dhdl_ir.Dtype
module B = Dhdl_ir.Builder
module Space = Dhdl_dse.Space
module Intmath = Dhdl_util.Intmath

let generate ~sizes ~params =
  let rows = App.size sizes "r" in
  let cols = App.size sizes "d" in
  let rtile = App.get params "tile" 40 in
  let p1 = App.get params "parP1" 4 in
  let p2 = App.get params "parP2" 4 in
  let m1 = App.get params "metaM1" 1 <> 0 in
  let m2 = App.get params "metaM2" 1 <> 0 in
  assert (rows mod rtile = 0);
  let b = B.create ~params "gda" in
  let x = B.offchip b "x" Dtype.float32 [ rows; cols ] in
  let y = B.offchip b "y" Dtype.bool_t [ rows ] in
  let mu0 = B.offchip b "mu0" Dtype.float32 [ cols ] in
  let mu1 = B.offchip b "mu1" Dtype.float32 [ cols ] in
  let sigma = B.offchip b "sigma" Dtype.float32 [ cols; cols ] in
  let mu0t = B.bram b "mu0T" Dtype.float32 [ cols ] in
  let mu1t = B.bram b "mu1T" Dtype.float32 [ cols ] in
  let xt = B.bram b "xT" Dtype.float32 [ rtile; cols ] in
  let yt = B.bram b "yT" Dtype.bool_t [ rtile ] in
  let subt = B.bram b "subT" Dtype.float32 [ cols ] in
  let sigma_tile = B.bram b "sigmaTile" Dtype.float32 [ cols; cols ] in
  let sigma_blk = B.bram b "sigmaBlk" Dtype.float32 [ cols; cols ] in
  let sigt = B.bram b "sigT" Dtype.float32 [ cols; cols ] in
  (* P1: subT(cc) = xT(rr,cc) - (yT(rr) ? mu1T(cc) : mu0T(cc)) *)
  let p1_pipe =
    B.pipe ~label:"P1" ~counters:[ ("cc", 0, cols, 1) ] ~par:p1 (fun pb ->
        let yv = B.load pb yt [ B.iter "rr" ] in
        let m1v = B.load pb mu1t [ B.iter "cc" ] in
        let m0v = B.load pb mu0t [ B.iter "cc" ] in
        let mu = B.mux pb yv m1v m0v in
        let xv = B.load pb xt [ B.iter "rr"; B.iter "cc" ] in
        B.store pb subt [ B.iter "cc" ] (B.sub pb xv mu))
  in
  (* P2: sigmaTile(ii,jj) = subT(ii) * subT(jj) *)
  let p2_pipe =
    B.pipe ~label:"P2"
      ~counters:[ ("ii", 0, cols, 1); ("jj", 0, cols, 1) ]
      ~par:p2
      (fun pb ->
        let a = B.load pb subt [ B.iter "ii" ] in
        let c = B.load pb subt [ B.iter "jj" ] in
        B.store pb sigma_tile [ B.iter "ii"; B.iter "jj" ] (B.mul pb a c))
  in
  (* M2: per-row outer products accumulated into sigmaBlk. *)
  let m2_loop =
    B.metapipe ~label:"M2"
      ~counters:[ ("rr", 0, rtile, 1) ]
      ~pipelined:m2
      ~reduce:(Op.Add, sigma_tile, sigma_blk)
      [ p1_pipe; p2_pipe ]
  in
  (* M1: row tiles accumulated into sigT. *)
  let m1_loop =
    B.metapipe ~label:"M1"
      ~counters:[ ("r", 0, rows, rtile) ]
      ~pipelined:m1
      ~reduce:(Op.Add, sigma_blk, sigt)
      [
        B.parallel ~label:"loadTile"
          [
            B.tile_load ~src:x ~dst:xt ~offsets:[ B.iter "r"; B.const 0.0 ] ~par:p1 ();
            B.tile_load ~src:y ~dst:yt ~offsets:[ B.iter "r" ] ~par:1 ();
          ];
        m2_loop;
      ]
  in
  let top =
    B.sequential_block ~label:"main"
      [
        B.parallel ~label:"loadMu"
          [
            B.tile_load ~src:mu0 ~dst:mu0t ~offsets:[ B.const 0.0 ] ~par:1 ();
            B.tile_load ~src:mu1 ~dst:mu1t ~offsets:[ B.const 0.0 ] ~par:1 ();
          ];
        m1_loop;
        B.tile_store ~dst:sigma ~src:sigt ~offsets:[ B.const 0.0; B.const 0.0 ] ~par:p2 ();
      ]
  in
  B.finish b ~top

let space sizes =
  let rows = App.size sizes "r" in
  let cols = App.size sizes "d" in
  let tiles =
    let ds = List.filter (fun t -> t >= 8 && t <= 1024) (Intmath.divisors rows) in
    if ds = [] then [ rows ] else ds
  in
  let p1s = List.filter (fun p -> p <= 32) (Intmath.divisors cols) in
  let p2s = List.filter (fun p -> p <= 192) (Intmath.divisors (cols * cols)) in
  Space.make ~name:"gda"
    ~dims:
      [
        ("tile", tiles);
        ("parP1", p1s);
        ("parP2", p2s);
        ("metaM1", [ 0; 1 ]);
        ("metaM2", [ 0; 1 ]);
      ]
    ~legal:(fun p ->
      let tile = App.get p "tile" 0 in
      tile * cols <= Space.mem_limit_words)
    ()

let app =
  {
    App.name = "gda";
    description = "Gaussian discriminant analysis";
    paper_sizes = [ ("r", 360_000); ("d", 96) ];
    test_sizes = [ ("r", 48); ("d", 8) ];
    default_params =
      (fun sizes ->
        let rows = App.size sizes "r" in
        [ ("tile", min 24 rows); ("parP1", 4); ("parP2", 4); ("metaM1", 1); ("metaM2", 1) ]);
    space;
    generate;
    cpu_workload =
      (fun sizes -> Dhdl_cpu.Cost_model.gda ~rows:(App.size sizes "r") ~cols:(App.size sizes "d"));
  }
