(** Vector dot product (Table II: 187,200,000 elements): the canonical
    memory-bound streaming reduction. Design parameters: [tile], [par]
    (reduction-tree width), [meta] (MetaPipe toggle). *)

val generate : sizes:App.sizes -> params:App.params -> Dhdl_ir.Ir.design
val space : App.sizes -> Dhdl_dse.Space.t
val app : App.t
