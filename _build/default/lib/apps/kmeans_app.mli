(** k-means clustering (Table II: 960,000 points, k = 8, 384 dims): one
    Lloyd iteration with on-chip argmin and data-dependent scatter
    accumulation. Parameters: [tile], [parDist], [parAcc], [parPoints]
    (whole-datapath replication), [meta]. *)

val generate : sizes:App.sizes -> params:App.params -> Dhdl_ir.Ir.design
val space : App.sizes -> Dhdl_dse.Space.t
val app : App.t
