(** Vector outer product (Table II: 38,400 x 38,400) — BRAM- and
    memory-bound: the output tile grows quadratically with the input tiles.
    Parameters: both tile sizes, compute parallelization, and MetaPipe
    toggles for the row and column loops. *)

module Ir = Dhdl_ir.Ir
module Op = Dhdl_ir.Op
module Dtype = Dhdl_ir.Dtype
module B = Dhdl_ir.Builder
module Space = Dhdl_dse.Space
module Intmath = Dhdl_util.Intmath

let generate ~sizes ~params =
  let n = App.size sizes "n" in
  let m = App.size sizes "m" in
  let tn = App.get params "tileA" 128 in
  let tm = App.get params "tileB" 128 in
  let par = App.get params "par" 4 in
  let m1 = App.get params "metaA" 1 <> 0 in
  let m2 = App.get params "metaB" 1 <> 0 in
  assert (n mod tn = 0 && m mod tm = 0);
  let b = B.create ~params "outerprod" in
  let x = B.offchip b "x" Dtype.float32 [ n ] in
  let y = B.offchip b "y" Dtype.float32 [ m ] in
  let out = B.offchip b "out" Dtype.float32 [ n; m ] in
  let xt = B.bram b "xT" Dtype.float32 [ tn ] in
  let yt = B.bram b "yT" Dtype.float32 [ tm ] in
  let ot = B.bram b "outT" Dtype.float32 [ tn; tm ] in
  let compute =
    B.pipe ~label:"prod"
      ~counters:[ ("ii", 0, tn, 1); ("jj", 0, tm, 1) ]
      ~par
      (fun pb ->
        let xv = B.load pb xt [ B.iter "ii" ] in
        let yv = B.load pb yt [ B.iter "jj" ] in
        B.store pb ot [ B.iter "ii"; B.iter "jj" ] (B.mul pb xv yv))
  in
  let inner =
    B.metapipe ~label:"cols"
      ~counters:[ ("j", 0, m, tm) ]
      ~pipelined:m2
      [
        B.tile_load ~src:y ~dst:yt ~offsets:[ B.iter "j" ] ~par ();
        compute;
        B.tile_store ~dst:out ~src:ot ~offsets:[ B.iter "i"; B.iter "j" ] ~par ();
      ]
  in
  let top =
    B.metapipe ~label:"rows"
      ~counters:[ ("i", 0, n, tn) ]
      ~pipelined:m1
      [ B.tile_load ~src:x ~dst:xt ~offsets:[ B.iter "i" ] ~par (); inner ]
  in
  B.finish b ~top

let space sizes =
  let n = App.size sizes "n" in
  let m = App.size sizes "m" in
  let tiles extent =
    let ds = List.filter (fun t -> t >= 32 && t <= 4096) (Intmath.divisors extent) in
    if ds = [] then [ extent ] else ds
  in
  Space.make ~name:"outerprod"
    ~dims:
      [
        ("tileA", tiles n);
        ("tileB", tiles m);
        ("par", [ 1; 2; 4; 8; 16; 32; 64; 128 ]);
        ("metaA", [ 0; 1 ]);
        ("metaB", [ 0; 1 ]);
      ]
    ~legal:(fun p ->
      let tn = App.get p "tileA" 0 and tm = App.get p "tileB" 0 in
      let par = App.get p "par" 1 in
      tn * tm <= Space.mem_limit_words && tm mod par = 0)
    ()

let app =
  {
    App.name = "outerprod";
    description = "Vector outer product";
    paper_sizes = [ ("n", 38_400); ("m", 38_400) ];
    test_sizes = [ ("n", 64); ("m", 32) ];
    default_params =
      (fun sizes ->
        let n = App.size sizes "n" and m = App.size sizes "m" in
        [ ("tileA", min 128 n); ("tileB", min 128 m); ("par", 4); ("metaA", 1); ("metaB", 1) ]);
    space;
    generate;
    cpu_workload =
      (fun sizes ->
        Dhdl_cpu.Cost_model.outerprod ~n:(App.size sizes "n") ~m:(App.size sizes "m"));
  }
