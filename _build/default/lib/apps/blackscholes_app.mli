(** Black-Scholes-Merton option pricing (Table II: 9,995,328 options): a
    deep feed-forward floating-point pipeline, the paper's best speedup.
    Parameters: [tile], [par], [meta]. *)

val rate : float
(** Risk-free rate baked into the kernel (matches the CPU reference). *)

val volatility : float

val generate : sizes:App.sizes -> params:App.params -> Dhdl_ir.Ir.design
val space : App.sizes -> Dhdl_dse.Space.t
val app : App.t
