(** Tiled matrix multiply (Table II: 1536^3). Parameters: [tileN], [tileM],
    [tileK], [par] (rank-update lanes), [metaK], [metaR]. *)

val generate : sizes:App.sizes -> params:App.params -> Dhdl_ir.Ir.design
val space : App.sizes -> Dhdl_dse.Space.t
val app : App.t
