module Target = Dhdl_device.Target
module Ir = Dhdl_ir.Ir

let netlist ?(dev = Target.stratix_v) d = Netlist.elaborate dev d

let synthesize ?(dev = Target.stratix_v) d =
  let n = Netlist.elaborate dev d in
  Par_effects.apply dev ~seed:(Ir.design_hash d) n

(* Logic synthesis time grows roughly linearly in netlist size with a
   noticeable constant: ~3 minutes floor, ~45 minutes per 100k LUTs. *)
let synthesis_wall_seconds (n : Netlist.t) =
  let luts = float_of_int (Dhdl_device.Resources.luts n.Netlist.raw) in
  180.0 +. (luts /. 100_000.0 *. 2_700.0) +. (float_of_int n.Netlist.nets /. 1_000.0)
