(** Elaboration of a DHDL design instance into netlist-level statistics.

    This is the front half of the simulated vendor toolchain: it replicates
    primitive nodes by their vector widths, builds reduction trees, allocates
    counters, controller FSMs, memory command generators and on-chip memory
    blocks, inserts delay-balancing resources from an ASAP schedule of each
    Pipe body, and applies the low-level datapath optimizations the Maxeler
    compiler performs automatically (floating-point multiply-add fusion and
    reduction-tree fusion, Section V.B). *)

module Resources = Dhdl_device.Resources
module Target = Dhdl_device.Target

type t = {
  raw : Resources.t;  (** Pre-place-and-route resource totals. *)
  nets : int;  (** Point-to-point connections needing routing. *)
  avg_fanout : float;
  tree_depth : int;  (** Controller hierarchy depth. *)
  streams : int;  (** Off-chip memory streams (TileLd/TileSt). *)
  ctrl_count : int;
  double_buffers : int;
  prim_count : int;  (** Primitive instances after replication. *)
  fused_fmas : int;  (** Multiply-add pairs fused by the backend. *)
}

val elaborate : Target.t -> Dhdl_ir.Ir.design -> t

val bram_blocks_of_mem : Target.t -> Dhdl_ir.Ir.mem -> int
(** M20K blocks for one on-chip memory after banking and double buffering.
    0 for off-chip memories and registers. *)

val pipe_delay_resources : Target.t -> Dhdl_ir.Ir.ctrl -> Resources.t
(** Delay-balancing registers/BRAMs for a [Pipe] body under ASAP scheduling
    (zero for other controllers). Exposed for the estimator's
    characterization tests. *)

val pipe_critical_path : Dhdl_ir.Ir.ctrl -> int
(** Length in cycles of the longest register-to-register path through a
    [Pipe] body (0 for other controllers). *)
