(** Place-and-route effects applied on top of elaborated netlist counts.

    Models the four factors of Section IV.A with design-dependent magnitudes
    and deterministic, design-seeded noise:
    - routing LUTs (~10% of LUTs, congestion dependent),
    - register duplication for fanout reduction (~5%),
    - block RAM duplication (10-100%, inherently noisy),
    - unavailable LUTs from packing constraints (~4%),
    - pairwise LUT packing (~80% of packable functions pack, saving ~40%). *)

module Target = Dhdl_device.Target

val congestion : Netlist.t -> float
(** Congestion score in [0, 1] derived from net count, fanout and density. *)

val apply : Target.t -> seed:int -> Netlist.t -> Report.t
(** Produce the post-place-and-route report. The same seed (derived from the
    design's structural hash) always yields the same report, as a real
    deterministic fitter would. *)
