module Resources = Dhdl_device.Resources
module Target = Dhdl_device.Target

type t = {
  alms : int;
  luts : int;
  regs : int;
  dsps : int;
  brams : int;
  luts_routing : int;
  luts_unavailable : int;
  regs_duplicated : int;
  brams_duplicated : int;
  packed_pairs : int;
}

let fits (dev : Target.t) r = r.alms <= dev.alms && r.dsps <= dev.dsps && r.brams <= dev.brams

let utilization (dev : Target.t) r =
  let pct used avail = 100.0 *. float_of_int used /. float_of_int avail in
  (pct r.alms dev.alms, pct r.dsps dev.dsps, pct r.brams dev.brams)

let to_string r =
  Printf.sprintf
    "ALMs=%d LUTs=%d (route %d, unavail %d) regs=%d (+%d dup) DSPs=%d BRAMs=%d (+%d dup) packed=%d"
    r.alms r.luts r.luts_routing r.luts_unavailable r.regs r.regs_duplicated r.dsps r.brams
    r.brams_duplicated r.packed_pairs
