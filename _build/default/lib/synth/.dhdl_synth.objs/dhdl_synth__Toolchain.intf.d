lib/synth/toolchain.mli: Dhdl_device Dhdl_ir Netlist Report
