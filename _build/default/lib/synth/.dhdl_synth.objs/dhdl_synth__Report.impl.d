lib/synth/report.ml: Dhdl_device Printf
