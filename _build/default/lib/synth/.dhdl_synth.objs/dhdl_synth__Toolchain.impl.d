lib/synth/toolchain.ml: Dhdl_device Dhdl_ir Netlist Par_effects
