lib/synth/par_effects.mli: Dhdl_device Netlist Report
