lib/synth/report.mli: Dhdl_device
