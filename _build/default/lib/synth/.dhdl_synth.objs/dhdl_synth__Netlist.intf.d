lib/synth/netlist.mli: Dhdl_device Dhdl_ir
