lib/synth/netlist.ml: Dhdl_device Dhdl_ir Dhdl_util Hashtbl List Option Printf
