lib/synth/par_effects.ml: Dhdl_device Dhdl_util Float Netlist Report
