(** The simulated vendor toolchain: elaborate then place-and-route.

    Stands in for the Altera Quartus / Maxeler MaxCompiler flow the paper
    synthesized its designs with. Results are deterministic per design. *)

module Target = Dhdl_device.Target

val synthesize : ?dev:Target.t -> Dhdl_ir.Ir.design -> Report.t
(** Full flow: {!Netlist.elaborate} then {!Par_effects.apply} seeded by the
    design's structural hash. Defaults to {!Target.stratix_v}. *)

val netlist : ?dev:Target.t -> Dhdl_ir.Ir.design -> Netlist.t

val synthesis_wall_seconds : Netlist.t -> float
(** Model of how long the real toolchain would take on this design (the
    "several hours per design" of Section I): minutes for tiny templates,
    hours for full designs. Used only for reporting context, never slept. *)
