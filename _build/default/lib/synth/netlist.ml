module Ir = Dhdl_ir.Ir
module Op = Dhdl_ir.Op
module Dtype = Dhdl_ir.Dtype
module Traverse = Dhdl_ir.Traverse
module Resources = Dhdl_device.Resources
module Primitives = Dhdl_device.Primitives
module Target = Dhdl_device.Target
module Intmath = Dhdl_util.Intmath
module R = Resources

type t = {
  raw : Resources.t;
  nets : int;
  avg_fanout : float;
  tree_depth : int;
  streams : int;
  ctrl_count : int;
  double_buffers : int;
  prim_count : int;
  fused_fmas : int;
}

(* ------------------------------------------------------------------ *)
(* Memory elaboration                                                  *)
(* ------------------------------------------------------------------ *)

let bram_blocks_of_mem dev (m : Ir.mem) =
  match m.Ir.mem_kind with
  | Ir.Offchip | Ir.Reg -> 0
  | Ir.Bram ->
    let banks = max 1 m.Ir.mem_banks in
    let depth_per_bank = Intmath.ceil_div (Ir.mem_words m) banks in
    let per_bank =
      Target.bram_blocks_for dev ~width_bits:(Dtype.bits m.Ir.mem_ty) ~depth:depth_per_bank
    in
    banks * per_bank * if m.Ir.mem_double then 2 else 1
  | Ir.Queue ->
    let depth = Ir.mem_words m in
    let blocks = Target.bram_blocks_for dev ~width_bits:(Dtype.bits m.Ir.mem_ty) ~depth in
    blocks * if m.Ir.mem_double then 2 else 1

let mem_resources dev (m : Ir.mem) =
  match m.Ir.mem_kind with
  | Ir.Offchip -> R.zero
  | Ir.Bram ->
    let banks = max 1 m.Ir.mem_banks in
    (* Bank-select decoding and per-bank write enables. *)
    let ctrl = R.make ~packable:(8 * banks) ~unpackable:(2 * banks) ~regs:(4 * banks) () in
    R.add ctrl (R.make ~brams:(bram_blocks_of_mem dev m) ())
  | Ir.Reg ->
    let bits = Dtype.bits m.Ir.mem_ty in
    let copies = if m.Ir.mem_double then 2 else 1 in
    R.make ~packable:(bits / 2) ~unpackable:0 ~regs:(bits * copies) ()
  | Ir.Queue ->
    (* Priority queue: storage plus a comparator column. *)
    let depth = Ir.mem_words m in
    let bits = Dtype.bits m.Ir.mem_ty in
    let cmp_levels = Intmath.ilog2_ceil (max 2 depth) in
    let cmps = R.scale cmp_levels (R.make ~packable:(bits * 2) ~unpackable:bits ~regs:bits ()) in
    R.add cmps (R.make ~brams:(bram_blocks_of_mem dev m) ~regs:(bits * 2) ())

(* ------------------------------------------------------------------ *)
(* Pipe body scheduling                                                *)
(* ------------------------------------------------------------------ *)

type sched = {
  starts : (int, int) Hashtbl.t;  (** value id -> issue cycle *)
  ends : (int, int) Hashtbl.t;  (** value id -> result-ready cycle *)
  types : (int, Dtype.t) Hashtbl.t;
  critical : int;
}

let stmt_latency = function
  | Ir.Sop { op; ty; _ } -> Primitives.latency op ty
  | Ir.Sload _ -> Primitives.load_store_latency
  | Ir.Sread_reg _ -> 1
  | Ir.Sstore _ | Ir.Swrite_reg _ | Ir.Spush _ -> 1
  | Ir.Spop _ -> 2

let operand_ready sched = function
  | Ir.Const _ | Ir.Iter _ -> 0
  | Ir.Value v -> ( match Hashtbl.find_opt sched.ends v with Some e -> e | None -> 0)

let stmt_operands = function
  | Ir.Sop { args; _ } -> args
  | Ir.Sload { addr; _ } -> addr
  | Ir.Sstore { addr; data; _ } -> data :: addr
  | Ir.Sread_reg _ | Ir.Spop _ -> []
  | Ir.Swrite_reg { data; _ } | Ir.Spush { data; _ } -> [ data ]

(* ASAP scheduling: each statement issues as soon as all operands are
   ready; the critical path is the latest result. *)
let asap body =
  let sched =
    { starts = Hashtbl.create 32; ends = Hashtbl.create 32; types = Hashtbl.create 32; critical = 0 }
  in
  let critical = ref 0 in
  List.iter
    (fun stmt ->
      let ready =
        List.fold_left (fun acc o -> max acc (operand_ready sched o)) 0 (stmt_operands stmt)
      in
      let lat = stmt_latency stmt in
      let fin = ready + lat in
      critical := max !critical fin;
      match stmt with
      | Ir.Sop { dst; ty; _ } ->
        Hashtbl.replace sched.starts dst ready;
        Hashtbl.replace sched.ends dst fin;
        Hashtbl.replace sched.types dst ty
      | Ir.Sload { dst; ty; _ } ->
        Hashtbl.replace sched.starts dst ready;
        Hashtbl.replace sched.ends dst fin;
        Hashtbl.replace sched.types dst ty
      | Ir.Sread_reg { dst; reg } ->
        Hashtbl.replace sched.starts dst ready;
        Hashtbl.replace sched.ends dst fin;
        Hashtbl.replace sched.types dst reg.Ir.mem_ty
      | Ir.Spop { dst; queue } ->
        Hashtbl.replace sched.starts dst ready;
        Hashtbl.replace sched.ends dst fin;
        Hashtbl.replace sched.types dst queue.Ir.mem_ty
      | Ir.Sstore _ | Ir.Swrite_reg _ | Ir.Spush _ -> ())
    body;
  { sched with critical = !critical }

(* Delay balancing: every operand arriving earlier than its consumer's
   issue cycle needs a matching delay line of (slack x width) bits. Deep
   delays are implemented in block RAM (Section IV.B.2). *)
let delay_resources_of_body dev ~par body =
  let sched = asap body in
  let acc = ref R.zero in
  List.iter
    (fun stmt ->
      let issue =
        List.fold_left (fun m o -> max m (operand_ready sched o)) 0 (stmt_operands stmt)
      in
      List.iter
        (fun o ->
          match o with
          | Ir.Const _ | Ir.Iter _ -> ()
          | Ir.Value v ->
            let slack = issue - operand_ready sched o in
            if slack > 0 then begin
              let bits =
                match Hashtbl.find_opt sched.types v with
                | Some ty -> Dtype.bits ty
                | None -> 32
              in
              let r =
                if slack > Primitives.delay_regs_threshold then
                  R.make ~brams:(Target.bram_blocks_for dev ~width_bits:bits ~depth:slack) ()
                else R.make ~regs:(slack * bits) ()
              in
              acc := R.add !acc (R.scale par r)
            end)
        (stmt_operands stmt))
    body;
  !acc

let pipe_delay_resources dev = function
  | Ir.Pipe { loop; body; _ } -> delay_resources_of_body dev ~par:loop.Ir.lp_par body
  | Ir.Loop _ | Ir.Parallel _ | Ir.Tile_load _ | Ir.Tile_store _ -> R.zero

let pipe_critical_path = function
  | Ir.Pipe { body; _ } -> (asap body).critical
  | Ir.Loop _ | Ir.Parallel _ | Ir.Tile_load _ | Ir.Tile_store _ -> 0

(* ------------------------------------------------------------------ *)
(* Backend datapath fusion (Section V.B)                               *)
(* ------------------------------------------------------------------ *)

(* The Maxeler backend fuses float multiplies feeding a single float add
   into one multiply-add unit, and additionally fuses multiplies feeding
   the first level of a floating-point reduction tree. *)
let fma_area = R.make ~packable:400 ~unpackable:180 ~regs:580 ~dsps:1 ()

let count_mul_add_pairs body =
  let uses = Hashtbl.create 16 in
  let bump = function
    | Ir.Value v -> Hashtbl.replace uses v (1 + Option.value ~default:0 (Hashtbl.find_opt uses v))
    | Ir.Const _ | Ir.Iter _ -> ()
  in
  List.iter (fun stmt -> List.iter bump (stmt_operands stmt)) body;
  let muls = Hashtbl.create 16 in
  List.iter
    (function
      | Ir.Sop { dst; op = Op.Mul; ty = Dtype.Flt _; _ } -> Hashtbl.replace muls dst ()
      | _ -> ())
    body;
  let fused = Hashtbl.create 16 in
  List.iter
    (function
      | Ir.Sop { op = Op.Add; ty = Dtype.Flt _; args; _ } ->
        List.iter
          (function
            | Ir.Value v
              when Hashtbl.mem muls v
                   && (not (Hashtbl.mem fused v))
                   && Hashtbl.find_opt uses v = Some 1 ->
              Hashtbl.replace fused v ()
            | _ -> ())
          args
      | _ -> ())
    body;
  Hashtbl.length fused

(* ------------------------------------------------------------------ *)
(* Per-controller elaboration                                          *)
(* ------------------------------------------------------------------ *)

let counter_bits c = Intmath.ilog2_ceil (max 2 (abs c.Ir.ctr_stop + 1)) + 1

let counter_chain_resources ~par counters =
  List.fold_left
    (fun acc c ->
      let bits = counter_bits c in
      let base = Primitives.counter_area ~bits in
      let vector =
        if par > 1 then R.scale (par - 1) (R.make ~packable:(bits / 2) ~regs:bits ()) else R.zero
      in
      R.add acc (R.add base vector))
    R.zero counters

let pipe_fsm = R.make ~packable:46 ~unpackable:18 ~regs:64 ()
let seq_fsm = R.make ~packable:64 ~unpackable:26 ~regs:88 ()
let metapipe_base = R.make ~packable:88 ~unpackable:34 ~regs:112 ()
let metapipe_per_stage = R.make ~packable:30 ~unpackable:12 ~regs:46 ()
let parallel_base = R.make ~packable:36 ~unpackable:14 ~regs:48 ()
let parallel_per_stage = R.make ~packable:12 ~unpackable:6 ~regs:18 ()
let tile_cmdgen_base = R.make ~packable:150 ~unpackable:60 ~regs:190 ()

let stmt_compute_area ~par stmt =
  match stmt with
  | Ir.Sop { op; ty; _ } -> R.scale par (Primitives.area op ty)
  | Ir.Sload { mem; _ } -> R.scale par (Primitives.load_store_area mem.Ir.mem_ty)
  | Ir.Sstore { mem; _ } -> R.scale par (Primitives.load_store_area mem.Ir.mem_ty)
  | Ir.Sread_reg { reg; _ } -> R.make ~packable:(Dtype.bits reg.Ir.mem_ty / 4) ()
  | Ir.Swrite_reg { reg; _ } -> R.make ~packable:(Dtype.bits reg.Ir.mem_ty / 4) ()
  | Ir.Spush { queue; _ } | Ir.Spop { queue; _ } ->
    (* Insertion shifter / compaction mux port of the sorting queue. *)
    R.make ~packable:(Dtype.bits queue.Ir.mem_ty) ~unpackable:(Dtype.bits queue.Ir.mem_ty / 2)
      ~regs:(Dtype.bits queue.Ir.mem_ty / 2) ()

let scalar_reduce_resources ~par (r : Ir.scalar_reduce) =
  let ty = r.Ir.sr_out.Ir.mem_ty in
  let combiner = Primitives.area r.Ir.sr_op ty in
  let tree = if par > 1 then R.scale (par - 1) combiner else R.zero in
  let accumulator = R.add combiner (R.make ~regs:(Dtype.bits ty) ()) in
  R.add tree accumulator

(* Float reduce trees fed by multiplies get their first tree level fused
   into multiply-adds by the backend: reclaim the difference. *)
let reduce_tree_fusion_savings ~par body (r : Ir.scalar_reduce) =
  match (r.Ir.sr_op, r.Ir.sr_out.Ir.mem_ty) with
  | Op.Add, Dtype.Flt _ when par > 1 ->
    let feeds_mul =
      match r.Ir.sr_value with
      | Ir.Value v ->
        List.exists
          (function Ir.Sop { dst; op = Op.Mul; _ } when dst = v -> true | _ -> false)
          body
      | Ir.Const _ | Ir.Iter _ -> false
    in
    if feeds_mul then
      let first_level = par / 2 in
      let adder = Primitives.area Op.Add Dtype.float32 in
      let mul = Primitives.area Op.Mul Dtype.float32 in
      let saved_each =
        R.add adder mul |> fun sep ->
        R.make
          ~packable:(max 0 (sep.R.lut_packable - fma_area.R.lut_packable))
          ~unpackable:(max 0 (sep.R.lut_unpackable - fma_area.R.lut_unpackable))
          ~regs:(max 0 (sep.R.regs - fma_area.R.regs))
          ()
      in
      (first_level, R.scale first_level saved_each)
    else (0, R.zero)
  | _ -> (0, R.zero)

let negate_savings (saved : R.t) total =
  R.make
    ~packable:(max 0 (total.R.lut_packable - saved.R.lut_packable))
    ~unpackable:(max 0 (total.R.lut_unpackable - saved.R.lut_unpackable))
    ~regs:(max 0 (total.R.regs - saved.R.regs))
    ~dsps:(total.R.dsps + saved.R.dsps)
    ~brams:total.R.brams ()

let mem_reduce_lanes ~par (r : Ir.mem_reduce) =
  (* The element-wise combine unit is as wide as the reduction buffers'
     banking, so it keeps up with the stage that produced the source. *)
  max (max 1 par) (max (max 1 r.Ir.mr_src.Ir.mem_banks) (max 1 r.Ir.mr_dst.Ir.mem_banks))

let mem_reduce_resources ~par (r : Ir.mem_reduce) =
  let ty = r.Ir.mr_dst.Ir.mem_ty in
  let lane =
    R.sum
      [
        Primitives.area r.Ir.mr_op ty;
        R.scale 3 (Primitives.load_store_area ty);
      ]
  in
  R.add (R.scale (mem_reduce_lanes ~par r) lane)
    (counter_chain_resources ~par:1
       [ { Ir.ctr_name = "ri"; ctr_start = 0; ctr_stop = Ir.mem_words r.Ir.mr_dst; ctr_step = 1 } ])

let tile_transfer_resources dev ~ty ~tile ~par =
  let word_bits = Dtype.bits ty in
  let counters =
    List.mapi
      (fun i extent -> { Ir.ctr_name = Printf.sprintf "t%d" i; ctr_start = 0; ctr_stop = extent; ctr_step = 1 })
      tile
  in
  R.sum
    [
      tile_cmdgen_base;
      counter_chain_resources ~par counters;
      Primitives.fifo_area ~width_bits:(word_bits * max 1 par) ~depth:512 dev;
      Primitives.fifo_area ~width_bits:96 ~depth:16 dev;
    ]

(* ------------------------------------------------------------------ *)
(* Net counting                                                        *)
(* ------------------------------------------------------------------ *)

let stmt_nets ~par stmt = par * (List.length (stmt_operands stmt) + 1)

let ctrl_nets ctrl =
  match ctrl with
  | Ir.Pipe { loop; body; reduce } ->
    let body_nets = List.fold_left (fun acc s -> acc + stmt_nets ~par:loop.Ir.lp_par s) 0 body in
    let red_nets = match reduce with None -> 0 | Some _ -> (2 * loop.Ir.lp_par) + 2 in
    body_nets + red_nets + (2 * List.length loop.Ir.lp_counters) + 4
  | Ir.Loop { loop; stages; pipelined; reduce } ->
    let hs = if pipelined then 4 else 2 in
    (hs * List.length stages)
    + (2 * List.length loop.Ir.lp_counters)
    + (match reduce with None -> 0 | Some r -> (2 * loop.Ir.lp_par) + (Ir.mem_words r.Ir.mr_dst / 256) + 4)
    + 4
  | Ir.Parallel { stages; _ } -> (2 * List.length stages) + 2
  | Ir.Tile_load { tile; par; _ } | Ir.Tile_store { tile; par; _ } ->
    30 + (2 * List.length tile) + (2 * par)

let mem_nets (m : Ir.mem) =
  match m.Ir.mem_kind with
  | Ir.Offchip -> 8
  | Ir.Bram -> (2 * max 1 m.Ir.mem_banks) + (if m.Ir.mem_double then 4 else 0)
  | Ir.Reg -> 2
  | Ir.Queue -> 6

(* ------------------------------------------------------------------ *)
(* Whole-design elaboration                                            *)
(* ------------------------------------------------------------------ *)

let ctrl_resources dev ctrl =
  match ctrl with
  | Ir.Pipe { loop; body; reduce } ->
    let par = loop.Ir.lp_par in
    let compute = R.sum (List.map (stmt_compute_area ~par) body) in
    (* Multiply-add fusion: replace fused pairs' separate units. *)
    let fused = count_mul_add_pairs body in
    let fusion_savings =
      let sep = R.add (Primitives.area Op.Mul Dtype.float32) (Primitives.area Op.Add Dtype.float32) in
      let saved_each =
        R.make
          ~packable:(max 0 (sep.R.lut_packable - fma_area.R.lut_packable))
          ~unpackable:(max 0 (sep.R.lut_unpackable - fma_area.R.lut_unpackable))
          ~regs:(max 0 (sep.R.regs - fma_area.R.regs))
          ()
      in
      R.scale (fused * par) saved_each
    in
    let compute = negate_savings fusion_savings compute in
    let reduce_res, tree_fusions =
      match reduce with
      | None -> (R.zero, 0)
      | Some r ->
        let base = scalar_reduce_resources ~par r in
        let fused_tree, saved = reduce_tree_fusion_savings ~par body r in
        (negate_savings saved base, fused_tree)
    in
    let delays = delay_resources_of_body dev ~par body in
    let counters = counter_chain_resources ~par loop.Ir.lp_counters in
    (R.sum [ compute; reduce_res; delays; counters; pipe_fsm ], (fused * par) + tree_fusions)
  | Ir.Loop { loop; stages; pipelined; reduce } ->
    let base = if pipelined then metapipe_base else seq_fsm in
    let per_stage = if pipelined then metapipe_per_stage else parallel_per_stage in
    let stage_cost = R.scale (List.length stages) per_stage in
    let counters = counter_chain_resources ~par:1 loop.Ir.lp_counters in
    let red =
      match reduce with None -> R.zero | Some r -> mem_reduce_resources ~par:loop.Ir.lp_par r
    in
    (R.sum [ base; stage_cost; counters; red ], 0)
  | Ir.Parallel { stages; _ } ->
    (R.add parallel_base (R.scale (List.length stages) parallel_per_stage), 0)
  | Ir.Tile_load { dst; tile; par; _ } ->
    (tile_transfer_resources dev ~ty:dst.Ir.mem_ty ~tile ~par, 0)
  | Ir.Tile_store { src; tile; par; _ } ->
    (tile_transfer_resources dev ~ty:src.Ir.mem_ty ~tile ~par, 0)

let elaborate dev (d : Ir.design) =
  let tagged = Traverse.ctrls_with_replication d in
  let ctrls = List.map fst tagged in
  (* Outer-loop parallelization replicates the whole stage subtree. *)
  let ctrl_res, fused =
    List.fold_left
      (fun (acc, f) (c, factor) ->
        let r, fc = ctrl_resources dev c in
        (R.add acc (R.scale factor r), f + (factor * fc)))
      (R.zero, 0) tagged
  in
  let mem_res =
    R.sum
      (List.map (fun m -> R.scale (Traverse.mem_replication d m) (mem_resources dev m)) d.d_mems)
  in
  let raw = R.add ctrl_res mem_res in
  let nets =
    List.fold_left (fun acc (c, factor) -> acc + (factor * ctrl_nets c)) 0 tagged
    + List.fold_left (fun acc m -> acc + (Traverse.mem_replication d m * mem_nets m)) 0 d.d_mems
  in
  let prim_count =
    List.fold_left
      (fun acc (c, factor) ->
        match c with
        | Ir.Pipe { loop; body; _ } -> acc + (factor * List.length body * loop.Ir.lp_par)
        | _ -> acc)
      0 tagged
  in
  let node_count =
    prim_count + List.length d.d_mems + (2 * List.length ctrls) |> max 1
  in
  {
    raw;
    nets;
    avg_fanout = float_of_int nets /. float_of_int node_count;
    tree_depth = Traverse.depth d.d_top;
    streams = List.length (Traverse.tile_transfers d);
    ctrl_count = List.length ctrls;
    double_buffers = List.length (List.filter (fun m -> m.Ir.mem_double) d.d_mems);
    prim_count;
    fused_fmas = fused;
  }
