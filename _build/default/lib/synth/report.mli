(** Post-place-and-route report, mirroring the fields of a vendor fitter
    report that the paper compares its estimates against. *)

module Resources = Dhdl_device.Resources
module Target = Dhdl_device.Target

type t = {
  alms : int;  (** Final adaptive logic modules after packing. *)
  luts : int;  (** Total LUTs including route-throughs and unavailable. *)
  regs : int;  (** Total registers including duplicates. *)
  dsps : int;
  brams : int;  (** M20K blocks including duplicates. *)
  luts_routing : int;  (** Route-through LUTs. *)
  luts_unavailable : int;  (** LUTs lost to packing constraints. *)
  regs_duplicated : int;
  brams_duplicated : int;
  packed_pairs : int;  (** LUT pairs merged by the packer. *)
}

val fits : Target.t -> t -> bool
(** True when every resource class fits on the device. *)

val utilization : Target.t -> t -> float * float * float
(** (ALM, DSP, BRAM) utilization as percentages of the device. *)

val to_string : t -> string
