module Target = Dhdl_device.Target
module R = Dhdl_device.Resources
module Rng = Dhdl_util.Rng
module Intmath = Dhdl_util.Intmath

let saturate x = min 1.0 (max 0.0 x)

let congestion (n : Netlist.t) =
  let net_term = saturate (float_of_int n.Netlist.nets /. 80_000.0) in
  let fanout_term = saturate ((n.Netlist.avg_fanout -. 1.0) /. 4.0) in
  let density_term = saturate (float_of_int (R.luts n.Netlist.raw) /. 200_000.0) in
  saturate ((0.5 *. net_term) +. (0.3 *. fanout_term) +. (0.2 *. density_term))

let noisy rng ~sigma base = base *. (1.0 +. Rng.gaussian rng ~mean:0.0 ~sigma)

let apply dev ~seed (n : Netlist.t) =
  let rng = Rng.create seed in
  let c = congestion n in
  let raw = n.Netlist.raw in
  let raw_luts = float_of_int (R.luts raw) in
  let raw_regs = float_of_int raw.R.regs in
  let raw_brams = float_of_int raw.R.brams in
  (* Routing LUTs: 6-16% of design LUTs depending on congestion. *)
  let luts_routing =
    int_of_float (noisy rng ~sigma:0.03 (raw_luts *. (0.06 +. (0.10 *. c)))) |> max 0
  in
  (* Register duplication for fanout reduction: around 5%. *)
  let regs_duplicated =
    int_of_float (noisy rng ~sigma:0.04 (raw_regs *. (0.03 +. (0.04 *. c)))) |> max 0
  in
  (* BRAM duplication: noisy, super-linear in congestion (10-100%). The
     decision of which RAMs to duplicate depends on placement details no
     pre-P&R feature captures, so the magnitude is inherently noisy
     (Section V.B: "BRAM duplication is inherently noisy, as more complex
     machine learning models failed to achieve better estimates than a
     simple linear fit"). *)
  let brams_duplicated =
    int_of_float (noisy rng ~sigma:0.40 (raw_brams *. (0.08 +. (0.9 *. c *. c)))) |> max 0
  in
  (* Unavailable LUTs: mapping constraints strand ~4%. *)
  let luts_unavailable =
    int_of_float (noisy rng ~sigma:0.05 ((raw_luts +. float_of_int luts_routing) *. (0.03 +. (0.02 *. c))))
    |> max 0
  in
  (* LUT packing: the fitter packs ~80% of packable functions pairwise.
     Route-through LUTs are always packable (Section IV.B.2). *)
  let pack_fraction = min 0.95 (max 0.55 (noisy rng ~sigma:0.02 0.80)) in
  let packable = float_of_int raw.R.lut_packable +. float_of_int luts_routing in
  let packed = packable *. pack_fraction in
  let packed_pairs = int_of_float (packed /. 2.0) in
  let luts_total =
    R.luts raw + luts_routing + luts_unavailable
  in
  let compute_units =
    float_of_int raw.R.lut_unpackable +. (packable -. packed) +. float_of_int packed_pairs
    +. float_of_int luts_unavailable
  in
  (* DSP perturbation: in congested designs the fitter occasionally maps
     small multiplies to logic or adds DSPs while rebalancing — a small
     absolute effect that dominates the *relative* DSP error of designs
     using under 2% of the device's DSPs (Section V.B's outerprod case). *)
  let dsps =
    if raw.R.dsps = 0 then 0
    else begin
      let sigma = (0.04 *. float_of_int raw.R.dsps *. c) +. (0.5 *. c) in
      let delta = int_of_float (Float.round (Rng.gaussian rng ~mean:0.0 ~sigma)) in
      max 0 (raw.R.dsps + delta)
    end
  in
  let regs_total = raw.R.regs + regs_duplicated in
  (* ALMs: enough fracturable LUT pairs for the compute units, and enough
     register pairs for the flip-flops (2 registers per compute unit on
     average; leftovers claim register-only ALMs). *)
  ignore dev.Target.luts_per_alm;
  let alm_from_luts = compute_units in
  let regs_absorbed = compute_units *. 2.0 in
  let leftover_regs = max 0.0 (float_of_int regs_total -. regs_absorbed) in
  let alm_from_regs = leftover_regs /. float_of_int dev.Target.regs_per_alm in
  let alms = int_of_float (ceil (alm_from_luts +. alm_from_regs)) in
  {
    Report.alms;
    luts = luts_total;
    regs = regs_total;
    dsps;
    brams = raw.R.brams + brams_duplicated;
    luts_routing;
    luts_unavailable;
    regs_duplicated;
    brams_duplicated;
    packed_pairs;
  }
