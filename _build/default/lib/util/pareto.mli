(** Pareto-frontier extraction for two-objective minimization (the paper's
    DSE plots minimize execution cycles against resource usage). *)

val dominates : float * float -> float * float -> bool
(** [dominates a b] is true when [a] is no worse than [b] in both objectives
    and strictly better in at least one (both minimized). *)

val frontier : ('a -> float * float) -> 'a list -> 'a list
(** Pareto-optimal subset under [dominates] of the projections. Stable with
    respect to the input order among equals; O(n log n). *)

val is_frontier_member : ('a -> float * float) -> 'a list -> 'a -> bool
(** True when no element of the list strictly dominates the candidate. *)
