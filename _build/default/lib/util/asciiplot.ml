type series = { label : char; points : (float * float) list }

let render ?(width = 64) ?(height = 20) ?(x_label = "x") ?(y_label = "y") ?(log_y = false) series =
  let all =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun (x, y) ->
            let y = if log_y then (if y <= 0.0 then nan else log10 y) else y in
            if Float.is_nan x || Float.is_nan y then None else Some (x, y))
          s.points)
      series
  in
  match all with
  | [] -> "(no points)\n"
  | _ ->
    let xs = List.map fst all and ys = List.map snd all in
    let x_min = List.fold_left min (List.hd xs) xs in
    let x_max = List.fold_left max (List.hd xs) xs in
    let y_min = List.fold_left min (List.hd ys) ys in
    let y_max = List.fold_left max (List.hd ys) ys in
    let x_span = if x_max -. x_min < 1e-9 then 1.0 else x_max -. x_min in
    let y_span = if y_max -. y_min < 1e-9 then 1.0 else y_max -. y_min in
    let grid = Array.make_matrix height width ' ' in
    List.iter
      (fun s ->
        List.iter
          (fun (x, y) ->
            let y = if log_y then (if y <= 0.0 then nan else log10 y) else y in
            if not (Float.is_nan y) then begin
              let col =
                int_of_float ((x -. x_min) /. x_span *. float_of_int (width - 1))
              in
              let row =
                height - 1 - int_of_float ((y -. y_min) /. y_span *. float_of_int (height - 1))
              in
              if row >= 0 && row < height && col >= 0 && col < width then grid.(row).(col) <- s.label
            end)
          s.points)
      series;
    let buf = Buffer.create ((width + 8) * (height + 3)) in
    let y_hi = if log_y then Printf.sprintf "1e%.1f" y_max else Printf.sprintf "%.3g" y_max in
    let y_lo = if log_y then Printf.sprintf "1e%.1f" y_min else Printf.sprintf "%.3g" y_min in
    Buffer.add_string buf (Printf.sprintf "%s (top=%s, bottom=%s)\n" y_label y_hi y_lo);
    Array.iter
      (fun row ->
        Buffer.add_string buf "  |";
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf ("  +" ^ String.make width '-' ^ "\n");
    Buffer.add_string buf
      (Printf.sprintf "   %s: %.3g .. %.3g\n" x_label x_min x_max);
    Buffer.contents buf
