let ceil_div a b =
  assert (b > 0);
  (a + b - 1) / b

let round_up a m = ceil_div a m * m

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)
let lcm a b = if a = 0 || b = 0 then 0 else abs (a * b) / gcd a b

let divisors n =
  assert (n > 0);
  let rec collect d low high =
    if d * d > n then List.rev_append low high
    else if n mod d = 0 then
      let q = n / d in
      if q = d then collect (d + 1) (d :: low) high
      else collect (d + 1) (d :: low) (q :: high)
    else collect (d + 1) low high
  in
  collect 1 [] []

let divisors_up_to n cap = List.filter (fun d -> d <= cap) (divisors n)

let pow2_up_to bound =
  let rec go p acc = if p > bound then List.rev acc else go (p * 2) (p :: acc) in
  if bound < 1 then [] else go 1 []

let is_pow2 n = n > 0 && n land (n - 1) = 0

let next_pow2 n =
  assert (n >= 1);
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let ilog2_ceil n =
  assert (n >= 1);
  let rec go p k = if p >= n then k else go (p * 2) (k + 1) in
  go 1 0

let clamp ~lo ~hi x = max lo (min hi x)

let prod = List.fold_left ( * ) 1
