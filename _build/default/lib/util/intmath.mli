(** Integer helpers used by tiling/banking arithmetic. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is the ceiling of a/b for positive [b]. *)

val round_up : int -> int -> int
(** [round_up a m] is the least multiple of [m] that is >= [a]. *)

val gcd : int -> int -> int
val lcm : int -> int -> int

val divisors : int -> int list
(** All positive divisors of [n] (n > 0), in increasing order. The paper's
    pruning heuristic only considers divisor tile sizes and parallelization
    factors (Section IV.C). *)

val divisors_up_to : int -> int -> int list
(** [divisors_up_to n cap] keeps divisors of [n] that are <= [cap]. *)

val pow2_up_to : int -> int list
(** Powers of two [1; 2; ...] not exceeding the bound. *)

val is_pow2 : int -> bool

val next_pow2 : int -> int
(** Smallest power of two >= n (n >= 1). *)

val ilog2_ceil : int -> int
(** Ceiling of log2 for n >= 1; [ilog2_ceil 1 = 0]. *)

val clamp : lo:int -> hi:int -> int -> int

val prod : int list -> int
(** Product of a list (1 for the empty list); used for memory volumes. *)
