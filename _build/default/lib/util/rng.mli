(** Deterministic, seedable pseudo-random number generator.

    All stochastic parts of the framework (design-space sampling, synthesis
    noise, training data) draw from explicit [Rng.t] states so that every
    experiment is reproducible from its seed. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. The seed may be any integer;
    zero is remapped internally to a fixed non-zero constant. *)

val copy : t -> t
(** Independent copy continuing from the same state. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val float_in : t -> float -> float -> float
(** Uniform in [\[lo, hi)]. *)

val bool : t -> bool

val gaussian : t -> mean:float -> sigma:float -> float
(** Box-Muller normal sample. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choice_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> 'a list -> int -> 'a list
(** [sample t xs n] draws up to [n] elements of [xs] without replacement,
    preserving no particular order. *)

val split : t -> t
(** Derive an independent generator (useful to decorrelate subsystems). *)
