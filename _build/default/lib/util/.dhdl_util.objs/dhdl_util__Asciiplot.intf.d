lib/util/asciiplot.mli:
