lib/util/matrix.mli:
