lib/util/intmath.mli:
