lib/util/pareto.mli:
