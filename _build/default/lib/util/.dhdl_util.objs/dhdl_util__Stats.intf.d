lib/util/stats.mli:
