lib/util/rng.mli:
