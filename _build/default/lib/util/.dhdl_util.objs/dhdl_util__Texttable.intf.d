lib/util/texttable.mli:
