lib/util/pareto.ml: List
