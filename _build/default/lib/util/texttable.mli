(** Plain-text table rendering for benchmark and experiment reports. *)

type align = Left | Right

val render : ?aligns:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays the table out with column separators and a
    rule under the header. Missing cells render empty; [aligns] defaults to
    left for the first column and right for the rest. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point formatting, default 2 decimals. *)

val fmt_pct : float -> string
(** Percentage with one decimal and a ["%"] suffix. *)

val fmt_int_commas : int -> string
(** 1234567 -> "1,234,567" for cycle counts and dataset sizes. *)
