type t = { mutable state : int64 }

let default_seed = 0x9E3779B97F4A7C15L

let create seed =
  let s = Int64.of_int seed in
  { state = (if Int64.equal s 0L then default_seed else s) }

let copy t = { state = t.state }

(* xorshift64* : fast, good-quality 64-bit generator. *)
let next t =
  let x = t.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.state <- x;
  Int64.mul x 0x2545F4914F6CDD1DL

let int t bound =
  assert (bound > 0);
  let r = Int64.shift_right_logical (next t) 1 in
  Int64.to_int (Int64.rem r (Int64.of_int bound))

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random mantissa bits scaled into [0, bound). *)
  let r = Int64.shift_right_logical (next t) 11 in
  Int64.to_float r /. 9007199254740992.0 *. bound

let float_in t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (next t) 1L |> Int64.equal 1L

let gaussian t ~mean ~sigma =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-300 then draw () else u1
  in
  let u1 = draw () in
  let u2 = float t 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (sigma *. z)

let choice t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let choice_list t xs =
  match xs with
  | [] -> invalid_arg "Rng.choice_list: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t xs n =
  let arr = Array.of_list xs in
  shuffle t arr;
  let k = min n (Array.length arr) in
  Array.to_list (Array.sub arr 0 k)

let split t =
  let s = next t in
  { state = (if Int64.equal s 0L then default_seed else s) }
