let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    let logsum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (logsum /. float_of_int (List.length xs))

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) *. (x -. m)) xs) in
    sqrt var

let median = function
  | [] -> 0.0
  | xs ->
    let arr = Array.of_list xs in
    Array.sort compare arr;
    let n = Array.length arr in
    if n mod 2 = 1 then arr.(n / 2)
    else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0

let minimum = function [] -> 0.0 | x :: xs -> List.fold_left min x xs
let maximum = function [] -> 0.0 | x :: xs -> List.fold_left max x xs

let percent_error ~actual ~predicted =
  if Float.abs actual < 1e-12 then
    if Float.abs predicted < 1e-12 then 0.0 else 100.0
  else Float.abs (predicted -. actual) /. Float.abs actual *. 100.0

let mean_abs_percent_error pairs =
  mean (List.map (fun (actual, predicted) -> percent_error ~actual ~predicted) pairs)

let correlation xs ys =
  let n = List.length xs in
  if n <> List.length ys || n < 2 then 0.0
  else begin
    let mx = mean xs and my = mean ys in
    let num = List.fold_left2 (fun a x y -> a +. ((x -. mx) *. (y -. my))) 0.0 xs ys in
    let sx = sqrt (List.fold_left (fun a x -> a +. ((x -. mx) *. (x -. mx))) 0.0 xs) in
    let sy = sqrt (List.fold_left (fun a y -> a +. ((y -. my) *. (y -. my))) 0.0 ys) in
    if sx *. sy < 1e-12 then 0.0 else num /. (sx *. sy)
  end

let rank_preserved actual predicted =
  let idx = Array.init (List.length actual) (fun i -> i) in
  let a = Array.of_list actual and p = Array.of_list predicted in
  if Array.length a <> Array.length p then false
  else begin
    let by_a = Array.copy idx and by_p = Array.copy idx in
    Array.sort (fun i j -> compare a.(i) a.(j)) by_a;
    Array.sort (fun i j -> compare p.(i) p.(j)) by_p;
    by_a = by_p
  end
