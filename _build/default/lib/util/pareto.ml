let dominates (ax, ay) (bx, by) =
  ax <= bx && ay <= by && (ax < bx || ay < by)

(* Sort by first objective then sweep keeping the running minimum of the
   second: classic O(n log n) 2-D Pareto extraction. *)
let frontier project items =
  let tagged = List.map (fun it -> (project it, it)) items in
  let sorted =
    List.stable_sort
      (fun ((ax, ay), _) ((bx, by), _) ->
        match compare ax bx with 0 -> compare ay by | c -> c)
      tagged
  in
  let rec sweep best_y acc = function
    | [] -> List.rev acc
    | ((_, y), it) :: rest ->
      if y < best_y then sweep y (it :: acc) rest else sweep best_y acc rest
  in
  sweep infinity [] sorted

let is_frontier_member project items candidate =
  let c = project candidate in
  not (List.exists (fun it -> dominates (project it) c) items)
