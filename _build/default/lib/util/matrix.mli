(** Dense float matrices with just enough linear algebra for least-squares
    fitting (normal equations) in the estimation models. *)

type t

val create : int -> int -> t
(** [create rows cols] is a zero matrix. *)

val of_rows : float array array -> t
(** Takes ownership of the array; rows must be equal length and non-empty. *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val identity : int -> t
val transpose : t -> t
val mul : t -> t -> t
val mul_vec : t -> float array -> float array

val solve : t -> float array -> float array
(** [solve a b] solves [a x = b] by Gaussian elimination with partial
    pivoting. Raises [Failure] on (near-)singular systems. *)

val least_squares : t -> float array -> float array
(** [least_squares a b] solves min ||a x - b||^2 via the regularized normal
    equations (ridge epsilon keeps rank-deficient fits stable). *)
