type t = { data : float array array; nrows : int; ncols : int }

let create nrows ncols =
  assert (nrows > 0 && ncols > 0);
  { data = Array.make_matrix nrows ncols 0.0; nrows; ncols }

let of_rows data =
  let nrows = Array.length data in
  assert (nrows > 0);
  let ncols = Array.length data.(0) in
  Array.iter (fun r -> assert (Array.length r = ncols)) data;
  { data; nrows; ncols }

let rows m = m.nrows
let cols m = m.ncols
let get m i j = m.data.(i).(j)
let set m i j v = m.data.(i).(j) <- v

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    m.data.(i).(i) <- 1.0
  done;
  m

let transpose m =
  let r = create m.ncols m.nrows in
  for i = 0 to m.nrows - 1 do
    for j = 0 to m.ncols - 1 do
      r.data.(j).(i) <- m.data.(i).(j)
    done
  done;
  r

let mul a b =
  assert (a.ncols = b.nrows);
  let r = create a.nrows b.ncols in
  for i = 0 to a.nrows - 1 do
    for k = 0 to a.ncols - 1 do
      let aik = a.data.(i).(k) in
      if aik <> 0.0 then
        for j = 0 to b.ncols - 1 do
          r.data.(i).(j) <- r.data.(i).(j) +. (aik *. b.data.(k).(j))
        done
    done
  done;
  r

let mul_vec a v =
  assert (a.ncols = Array.length v);
  Array.init a.nrows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to a.ncols - 1 do
        acc := !acc +. (a.data.(i).(j) *. v.(j))
      done;
      !acc)

let solve a b =
  assert (a.nrows = a.ncols && a.nrows = Array.length b);
  let n = a.nrows in
  (* Work on copies: Gaussian elimination with partial pivoting. *)
  let m = Array.map Array.copy a.data in
  let rhs = Array.copy b in
  for col = 0 to n - 1 do
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if Float.abs m.(row).(col) > Float.abs m.(!pivot).(col) then pivot := row
    done;
    if Float.abs m.(!pivot).(col) < 1e-12 then failwith "Matrix.solve: singular system";
    if !pivot <> col then begin
      let tmp = m.(col) in
      m.(col) <- m.(!pivot);
      m.(!pivot) <- tmp;
      let tb = rhs.(col) in
      rhs.(col) <- rhs.(!pivot);
      rhs.(!pivot) <- tb
    end;
    for row = col + 1 to n - 1 do
      let factor = m.(row).(col) /. m.(col).(col) in
      if factor <> 0.0 then begin
        for j = col to n - 1 do
          m.(row).(j) <- m.(row).(j) -. (factor *. m.(col).(j))
        done;
        rhs.(row) <- rhs.(row) -. (factor *. rhs.(col))
      end
    done
  done;
  let x = Array.make n 0.0 in
  for row = n - 1 downto 0 do
    let acc = ref rhs.(row) in
    for j = row + 1 to n - 1 do
      acc := !acc -. (m.(row).(j) *. x.(j))
    done;
    x.(row) <- !acc /. m.(row).(row)
  done;
  x

let least_squares a b =
  assert (a.nrows = Array.length b);
  let at = transpose a in
  let ata = mul at a in
  (* Ridge regularization keeps near-collinear characterization data stable. *)
  for i = 0 to ata.nrows - 1 do
    ata.data.(i).(i) <- ata.data.(i).(i) +. 1e-8
  done;
  let atb = mul_vec at b in
  solve ata atb
