(** Small statistics helpers used by estimation-error reporting. *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0 for the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 for lists shorter than 2. *)

val median : float list -> float
(** Median; 0 for the empty list. *)

val minimum : float list -> float
val maximum : float list -> float

val percent_error : actual:float -> predicted:float -> float
(** Absolute relative error in percent, |predicted - actual| / |actual| * 100.
    When [actual] is 0 the error is 0 if [predicted] is also 0, 100 otherwise
    (the convention used for unused resource classes such as DSPs). *)

val mean_abs_percent_error : (float * float) list -> float
(** Average of [percent_error] over (actual, predicted) pairs. *)

val correlation : float list -> float list -> float
(** Pearson correlation of two equal-length series; 0 when undefined. *)

val rank_preserved : float list -> float list -> bool
(** [rank_preserved actual predicted] is true when sorting by the predicted
    values yields the same order as sorting by the actual values. Used for
    the paper's claim that estimates "preserve ordering across designs". *)
