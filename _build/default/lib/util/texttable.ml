type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?aligns ~header rows =
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) (List.length header) rows in
  let cell row i = match List.nth_opt row i with Some c -> c | None -> "" in
  let all = header :: rows in
  let widths =
    Array.init ncols (fun i ->
        List.fold_left (fun acc row -> max acc (String.length (cell row i))) 0 all)
  in
  let aligns =
    match aligns with
    | Some a -> Array.init ncols (fun i -> match List.nth_opt a i with Some x -> x | None -> Right)
    | None -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let line row =
    String.concat "  " (List.init ncols (fun i -> pad aligns.(i) widths.(i) (cell row i)))
  in
  let rule =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let body = List.map line rows in
  String.concat "\n" ((line header :: rule :: body) @ [ "" ])

let fmt_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let fmt_pct x = Printf.sprintf "%.1f%%" x

let fmt_int_commas n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  (if n < 0 then "-" else "") ^ Buffer.contents buf
