(** Terminal scatter plots for the design-space figures.

    Renders (x, y) points into a character grid — enough to see the shape
    of Figure 5's clouds and Pareto fronts in the bench output. *)

type series = {
  label : char;  (** Glyph used for the series ('.', '*', 'x'...). *)
  points : (float * float) list;
}

val render :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  ?log_y:bool ->
  series list ->
  string
(** Later series draw over earlier ones. Axis ranges come from the data;
    [log_y] plots log10 of y (cycles axes in the paper are log scale).
    Defaults: 64 x 20 cells. *)
