lib/core/experiments.ml: Array Dhdl_apps Dhdl_cpu Dhdl_device Dhdl_dse Dhdl_hls Dhdl_model Dhdl_sim Dhdl_synth Dhdl_util Filename Float List Printf String Unix
