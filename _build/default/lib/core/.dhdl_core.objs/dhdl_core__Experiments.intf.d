lib/core/experiments.mli: Dhdl_dse Dhdl_model
