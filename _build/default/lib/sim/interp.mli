(** Functional interpreter for DHDL designs.

    Executes a design instance on concrete data, giving the reference
    semantics of the templates: counters iterate, Pipe bodies evaluate their
    dataflow statements per iteration, scalar reductions fold each Pipe
    execution into a register, memory reductions fold per-iteration buffers
    element-wise, and tile transfers copy between off-chip arrays and BRAMs.

    Parallelization factors and pipelining toggles do not change results
    (they only change the schedule), so the interpreter executes sequentially
    — this is what makes it usable as a correctness oracle for every point
    of a design space. On-chip memories start zeroed; accumulators in the
    benchmarks rely on that (Add/Or reductions).

    Execution raises [Failure] on out-of-bounds addresses, making the
    interpreter double as a dynamic checker for tiling arithmetic. *)

type env

val run : Dhdl_ir.Ir.design -> inputs:(string * float array) list -> env
(** Execute the whole design. [inputs] binds off-chip memories by name; each
    array must match the memory's total word count. Off-chip memories
    without a binding start zeroed. *)

val offchip : env -> string -> float array
(** Final contents of an off-chip memory (a copy). Raises [Not_found]. *)

val bram : env -> string -> float array
(** Final contents of an on-chip buffer (a copy). Raises [Not_found]. *)

val reg : env -> string -> float
(** Final value of a register. Raises [Not_found]. *)

val queue : env -> string -> float list
(** Remaining contents of a priority queue, smallest first.
    Raises [Not_found]. *)
