lib/sim/perf_sim.ml: Dhdl_device Dhdl_ir Dhdl_synth Dhdl_util Float Hashtbl List
