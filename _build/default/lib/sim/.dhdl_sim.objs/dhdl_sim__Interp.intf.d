lib/sim/interp.mli: Dhdl_ir
