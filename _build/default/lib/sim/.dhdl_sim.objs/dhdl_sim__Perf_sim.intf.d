lib/sim/perf_sim.mli: Dhdl_device Dhdl_ir
