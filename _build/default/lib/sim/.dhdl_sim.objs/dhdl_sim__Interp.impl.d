lib/sim/interp.ml: Array Dhdl_ir Hashtbl List Printf
