module Ir = Dhdl_ir.Ir
module Op = Dhdl_ir.Op
module Dtype = Dhdl_ir.Dtype
module B = Dhdl_ir.Builder
module Intmath = Dhdl_util.Intmath

(* ------------------------- Element expressions --------------------- *)

type elt = Arg of int | Constf of float | Prim of Op.t * elt list

let arg i = Arg i
let constf f = Constf f
let prim op args = Prim (op, args)
let ( +% ) a b = Prim (Op.Add, [ a; b ])
let ( -% ) a b = Prim (Op.Sub, [ a; b ])
let ( *% ) a b = Prim (Op.Mul, [ a; b ])
let ( /% ) a b = Prim (Op.Div, [ a; b ])

let rec eval_elt e env =
  match e with
  | Arg i -> env.(i)
  | Constf f -> f
  | Prim (op, args) -> Op.eval op (List.map (fun a -> eval_elt a env) args)

let rec elt_to_string = function
  | Arg i -> Printf.sprintf "x%d" i
  | Constf f -> Printf.sprintf "%g" f
  | Prim (op, args) ->
    Printf.sprintf "%s(%s)" (Op.name op) (String.concat ", " (List.map elt_to_string args))

let rec elt_ops = function
  | Arg _ | Constf _ -> 0
  | Prim (_, args) -> 1 + List.fold_left (fun acc a -> acc + elt_ops a) 0 args

(* Substitute the arguments of [f] with the given element expressions
   (renumbered): the core of vertical fusion. *)
let rec subst f ~args =
  match f with
  | Arg i -> List.nth args i
  | Constf _ -> f
  | Prim (op, xs) -> Prim (op, List.map (fun x -> subst x ~args) xs)

(* ------------------------- Patterns -------------------------------- *)

type t =
  | Input of { name : string; ty : Dtype.t }
  | Emap of { f : elt; args : t list }
  | Ereduce of { op : Op.t; src : t }
  | Eouter of { f : elt; a : t; b : t }

let input ?(ty = Dtype.float32) name = Input { name; ty }
let map f src = Emap { f = f (Arg 0); args = [ src ] }
let zip2 f a b = Emap { f = f (Arg 0) (Arg 1); args = [ a; b ] }
let zip3 f a b c = Emap { f = f (Arg 0) (Arg 1) (Arg 2); args = [ a; b; c ] }
let zip4 f a b c d = Emap { f = f (Arg 0) (Arg 1) (Arg 2) (Arg 3); args = [ a; b; c; d ] }
let reduce op src = Ereduce { op; src }

let outer f a b = Eouter { f = f (Arg 0) (Arg 1); a; b }

let filter_reduce ~pred ~f op src =
  let keep = pred (Arg 0) in
  let value = f (Arg 0) in
  let masked = Prim (Op.Mux, [ keep; value; Constf (Op.identity_element op) ]) in
  Ereduce { op; src = Emap { f = masked; args = [ src ] } }

let inputs pat =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let rec go = function
    | Input { name; ty } ->
      if not (Hashtbl.mem seen name) then begin
        Hashtbl.replace seen name ();
        out := (name, ty) :: !out
      end
    | Emap { args; _ } -> List.iter go args
    | Ereduce { src; _ } -> go src
    | Eouter { a; b; _ } ->
      go a;
      go b
  in
  go pat;
  List.rev !out

let is_scalar = function Ereduce _ -> true | Input _ | Emap _ | Eouter _ -> false

let rec to_string = function
  | Input { name; _ } -> name
  | Emap { f; args } ->
    Printf.sprintf "map[%s](%s)" (elt_to_string f) (String.concat ", " (List.map to_string args))
  | Ereduce { op; src } -> Printf.sprintf "reduce[%s](%s)" (Op.name op) (to_string src)
  | Eouter { f; a; b } ->
    Printf.sprintf "outer[%s](%s, %s)" (elt_to_string f) (to_string a) (to_string b)

(* ------------------------- Reference evaluator --------------------- *)

let eval pat ~env =
  (* 1-D collections take their length from their own inputs, so the two
     sides of an outer pattern may differ in length. *)
  let rec collection = function
    | Input { name; _ } -> (
      match List.assoc_opt name env with
      | Some data -> data
      | None -> invalid_arg (Printf.sprintf "Pattern.eval: missing input %s" name))
    | Emap { f; args } ->
      let srcs = List.map collection args in
      let length =
        match srcs with
        | [] -> invalid_arg "Pattern.eval: map with no sources"
        | first :: rest ->
          List.iter
            (fun s ->
              if Array.length s <> Array.length first then
                invalid_arg "Pattern.eval: zipped collections differ in length")
            rest;
          Array.length first
      in
      Array.init length (fun i -> eval_elt f (Array.of_list (List.map (fun s -> s.(i)) srcs)))
    | Ereduce _ -> invalid_arg "Pattern.eval: nested reduction"
    | Eouter _ -> invalid_arg "Pattern.eval: nested outer pattern"
  in
  let outer_matrix f a b =
    let av = collection a and bv = collection b in
    let n = Array.length av and m = Array.length bv in
    Array.init (n * m) (fun idx -> eval_elt f [| av.(idx / m); bv.(idx mod m) |])
  in
  match pat with
  | Ereduce { op; src = Eouter { f; a; b } } ->
    let data = outer_matrix f a b in
    [| Array.fold_left (fun acc v -> Op.eval op [ acc; v ]) (Op.identity_element op) data |]
  | Ereduce { op; src } ->
    let data = collection src in
    [| Array.fold_left (fun acc v -> Op.eval op [ acc; v ]) (Op.identity_element op) data |]
  | Eouter { f; a; b } -> outer_matrix f a b
  | other -> collection other

(* ------------------------- Fusion ---------------------------------- *)

type fused =
  | Fused_map of { f : elt; srcs : (string * Dtype.t) list }
  | Fused_reduce of { op : Op.t; f : elt; srcs : (string * Dtype.t) list }
  | Fused_outer of {
      f : elt;
      a_srcs : (string * Dtype.t) list;
      b_srcs : (string * Dtype.t) list;
      reduce : Op.t option;
    }

(* Fuse a collection expression into one element function over the leaf
   inputs. Returns the function and the leaf list (dedup by name). *)
let fuse_collection pat =
  let srcs = inputs pat in
  let index name =
    let rec find i = function
      | [] -> assert false
      | (n, _) :: _ when n = name -> i
      | _ :: rest -> find (i + 1) rest
    in
    find 0 srcs
  in
  let rec go = function
    | Input { name; _ } -> Arg (index name)
    | Emap { f; args } -> subst f ~args:(List.map go args)
    | Ereduce _ -> failwith "Pattern.fuse: reduction nested inside a map is not streamable"
    | Eouter _ -> failwith "Pattern.fuse: outer pattern nested inside a map is not streamable"
  in
  (go pat, srcs)

(* Fuse both sides of an outer pattern and splice them into its binary
   element function; column-side argument indices shift past the row side. *)
let fuse_outer f a b ~reduce =
  let fa, a_srcs = fuse_collection a in
  let fb, b_srcs = fuse_collection b in
  let rec shift k = function
    | Arg i -> Arg (i + k)
    | Constf _ as c -> c
    | Prim (op, args) -> Prim (op, List.map (shift k) args)
  in
  let body = subst f ~args:[ fa; shift (List.length a_srcs) fb ] in
  Fused_outer { f = body; a_srcs; b_srcs; reduce }

let fuse = function
  | Eouter { f; a; b } -> fuse_outer f a b ~reduce:None
  | Ereduce { op; src = Eouter { f; a; b } } -> fuse_outer f a b ~reduce:(Some op)
  | Ereduce { op; src } ->
    let f, srcs = fuse_collection src in
    Fused_reduce { op; f; srcs }
  | other ->
    let f, srcs = fuse_collection other in
    Fused_map { f; srcs }

let fused_ops = function
  | Fused_map { f; _ } | Fused_reduce { f; _ } | Fused_outer { f; _ } -> elt_ops f

(* ------------------------- Lowering -------------------------------- *)

(* Emit a fused element function as primitive statements reading from the
   per-input tile buffers at iterator [i]. *)
let rec emit_elt pb tiles e =
  match e with
  | Arg i -> B.load pb (List.nth tiles i) [ B.iter "i" ]
  | Constf f -> B.const f
  | Prim (op, args) ->
    let xs = List.map (emit_elt pb tiles) args in
    B.op pb op xs

let default_tile n = List.fold_left max 1 (Intmath.divisors_up_to n 1024)

(* Lower an outer pattern: the two-level tiled loop nest of the outerprod
   benchmark, with per-side input tiles; the fused body indexes row tiles
   with ii and column tiles with jj. *)
let lower_outer ~name ~n ~m ~tile_a ~tile_b ~par ~meta ~f ~a_srcs ~b_srcs ~red =
  if n mod tile_a <> 0 then
    invalid_arg (Printf.sprintf "Pattern.lower: tile %d does not divide n = %d" tile_a n);
  if m mod tile_b <> 0 then
    invalid_arg (Printf.sprintf "Pattern.lower: tile %d does not divide m = %d" tile_b m);
  let b =
    B.create
      ~params:[ ("tileA", tile_a); ("tileB", tile_b); ("par", par); ("meta", (if meta then 1 else 0)) ]
      name
  in
  let a_off = List.map (fun (nm, ty) -> B.offchip b nm ty [ n ]) a_srcs in
  let b_off = List.map (fun (nm, ty) -> B.offchip b nm ty [ m ]) b_srcs in
  let a_tiles = List.map (fun (nm, ty) -> B.bram b (nm ^ "T") ty [ tile_a ]) a_srcs in
  let b_tiles = List.map (fun (nm, ty) -> B.bram b (nm ^ "T") ty [ tile_b ]) b_srcs in
  let na = List.length a_srcs in
  let rec emit pb e =
    match e with
    | Arg i ->
      if i < na then B.load pb (List.nth a_tiles i) [ B.iter "ii" ]
      else B.load pb (List.nth b_tiles (i - na)) [ B.iter "jj" ]
    | Constf v -> B.const v
    | Prim (op, args) -> B.op pb op (List.map (emit pb) args)
  in
  let a_loads =
    List.map2 (fun src dst -> B.tile_load ~src ~dst ~offsets:[ B.iter "i" ] ~par ()) a_off a_tiles
  in
  let b_loads =
    List.map2 (fun src dst -> B.tile_load ~src ~dst ~offsets:[ B.iter "j" ] ~par ()) b_off b_tiles
  in
  let stage loads = match loads with [ only ] -> only | many -> B.parallel ~label:"loads" many in
  let top =
    match red with
    | None ->
      let out = B.offchip b "out" Dtype.float32 [ n; m ] in
      let outt = B.bram b "outT" Dtype.float32 [ tile_a; tile_b ] in
      let compute =
        B.pipe ~label:"fusedOuter"
          ~counters:[ ("ii", 0, tile_a, 1); ("jj", 0, tile_b, 1) ]
          ~par
          (fun pb -> B.store pb outt [ B.iter "ii"; B.iter "jj" ] (emit pb f))
      in
      let cols =
        B.metapipe ~label:"cols"
          ~counters:[ ("j", 0, m, tile_b) ]
          ~pipelined:meta
          [
            stage b_loads;
            compute;
            B.tile_store ~dst:out ~src:outt ~offsets:[ B.iter "i"; B.iter "j" ] ~par ();
          ]
      in
      B.metapipe ~label:"rows" ~counters:[ ("i", 0, n, tile_a) ] ~pipelined:meta
        (a_loads @ [ cols ])
    | Some op ->
      let partial = B.reg b "partial" Dtype.float32 in
      let col_acc = B.reg b "colAcc" Dtype.float32 in
      let out = B.reg b "out" Dtype.float32 in
      let compute =
        B.reduce_pipe ~label:"fusedOuterRed"
          ~counters:[ ("ii", 0, tile_a, 1); ("jj", 0, tile_b, 1) ]
          ~par ~op ~out:partial
          (fun pb -> emit pb f)
      in
      let cols =
        B.metapipe ~label:"cols"
          ~counters:[ ("j", 0, m, tile_b) ]
          ~pipelined:meta ~reduce:(op, partial, col_acc)
          [ stage b_loads; compute ]
      in
      B.metapipe ~label:"rows"
        ~counters:[ ("i", 0, n, tile_a) ]
        ~pipelined:meta ~reduce:(op, col_acc, out)
        (a_loads @ [ cols ])
  in
  B.finish b ~top

let rec lower ~name ~n ?m ?tile ?tile_b ?(par = 4) ?(meta = true) pat =
  match fuse pat with
  | Fused_outer { f; a_srcs; b_srcs; reduce = red } ->
    let m = Option.value m ~default:n in
    let tile_a = Option.value tile ~default:(default_tile n) in
    let tile_b = Option.value tile_b ~default:(default_tile m) in
    lower_outer ~name ~n ~m ~tile_a ~tile_b ~par ~meta ~f ~a_srcs ~b_srcs ~red
  | fused -> lower_streaming ~name ~n ~tile ~par ~meta ~fused

and lower_streaming ~name ~n ~tile ~par ~meta ~fused =
  let tile = match tile with Some t -> t | None -> default_tile n in
  if n mod tile <> 0 then
    invalid_arg (Printf.sprintf "Pattern.lower: tile %d does not divide n = %d" tile n);
  let b = B.create ~params:[ ("tile", tile); ("par", par); ("meta", (if meta then 1 else 0)) ] name in
  let srcs =
    match fused with
    | Fused_map { srcs; _ } | Fused_reduce { srcs; _ } -> srcs
    | Fused_outer _ -> assert false
  in
  let offchips = List.map (fun (nm, ty) -> B.offchip b nm ty [ n ]) srcs in
  let tiles = List.map (fun (nm, ty) -> B.bram b (nm ^ "T") ty [ tile ]) srcs in
  let loads =
    List.map2
      (fun src dst -> B.tile_load ~src ~dst ~offsets:[ B.iter "t" ] ~par ())
      offchips tiles
  in
  let load_stage = match loads with [ only ] -> only | many -> B.parallel ~label:"loads" many in
  let top =
    match fused with
    | Fused_outer _ -> assert false
    | Fused_map { f; _ } ->
      let out = B.offchip b "out" Dtype.float32 [ n ] in
      let outt = B.bram b "outT" Dtype.float32 [ tile ] in
      let compute =
        B.pipe ~label:"fusedMap" ~counters:[ ("i", 0, tile, 1) ] ~par (fun pb ->
            B.store pb outt [ B.iter "i" ] (emit_elt pb tiles f))
      in
      B.metapipe ~label:"tiles"
        ~counters:[ ("t", 0, n, tile) ]
        ~pipelined:meta
        [ load_stage; compute; B.tile_store ~dst:out ~src:outt ~offsets:[ B.iter "t" ] ~par () ]
    | Fused_reduce { op; f; _ } ->
      let partial = B.reg b "partial" Dtype.float32 in
      let out = B.reg b "out" Dtype.float32 in
      let compute =
        B.reduce_pipe ~label:"fusedReduce" ~counters:[ ("i", 0, tile, 1) ] ~par ~op ~out:partial
          (fun pb -> emit_elt pb tiles f)
      in
      B.metapipe ~label:"tiles"
        ~counters:[ ("t", 0, n, tile) ]
        ~pipelined:meta ~reduce:(op, partial, out)
        [ load_stage; compute ]
  in
  B.finish b ~top
