(** Parallel patterns — the high-level input language of Figure 1 (step 1).

    The paper's system is fed by DSLs built on parallel patterns (map,
    zipWith, filter, reduce [16, 19, 20]); a prior compiler [22] fuses and
    tiles them and emits DHDL. This module implements that front end for
    one-dimensional streaming programs: a pure pattern IR, a reference
    evaluator, a fusion transformation, and the lowering to tiled DHDL
    templates (Section III.A's "explicit rules to generate DHDL for each
    parallel pattern").

    Element functions are scalar expression trees over the element(s) of the
    source collections ({!elt}); patterns compose collections. A program is
    a single output pattern over named inputs. *)

(** {1 Element-level expressions} *)

type elt =
  | Arg of int  (** The i-th fused input element (0-based). *)
  | Constf of float
  | Prim of Dhdl_ir.Op.t * elt list

val arg : int -> elt
val constf : float -> elt
val ( +% ) : elt -> elt -> elt
val ( -% ) : elt -> elt -> elt
val ( *% ) : elt -> elt -> elt
val ( /% ) : elt -> elt -> elt
val prim : Dhdl_ir.Op.t -> elt list -> elt

val eval_elt : elt -> float array -> float
(** Evaluate with [Arg i] bound to the i-th array element. *)

val elt_to_string : elt -> string

(** {1 Patterns} *)

type t =
  | Input of { name : string; ty : Dhdl_ir.Dtype.t }
      (** A named 1-D input collection (length fixed at lowering). *)
  | Emap of { f : elt; args : t list }
      (** n-ary zipWith; [args] are evaluated element-wise and bound to
          [Arg 0..n-1] of [f]. A unary [Emap] is a plain map. *)
  | Ereduce of { op : Dhdl_ir.Op.t; src : t }
      (** Full reduction of a collection to a scalar. *)
  | Eouter of { f : elt; a : t; b : t }
      (** Nested parallelism: the 2-D collection out[i,j] = f(a[i], b[j])
          (outer product generalized to any binary element function). *)

val input : ?ty:Dhdl_ir.Dtype.t -> string -> t
val map : (elt -> elt) -> t -> t
val zip2 : (elt -> elt -> elt) -> t -> t -> t
val zip3 : (elt -> elt -> elt -> elt) -> t -> t -> t -> t
val zip4 : (elt -> elt -> elt -> elt -> elt) -> t -> t -> t -> t -> t
val reduce : Dhdl_ir.Op.t -> t -> t

val outer : (elt -> elt -> elt) -> t -> t -> t
(** [outer f a b]: the n x m collection f(a_i, b_j). May be reduced with
    {!reduce} (a full 2-D reduction) or lowered as-is (a 2-D output). *)

val filter_reduce : pred:(elt -> elt) -> f:(elt -> elt) -> Dhdl_ir.Op.t -> t -> t
(** The paper's filter pattern in its common reduce position (TPC-H Q6):
    reduce f(x) over elements satisfying pred, realized as a mux against the
    reduction identity — exactly how filters lower to dataflow hardware
    (Section V.D's "branches are implemented using simple multiplexers"). *)

val inputs : t -> (string * Dhdl_ir.Dtype.t) list
(** Distinct input collections, in first-use order. *)

val is_scalar : t -> bool
(** True for reductions (the output is one value, not a collection). *)

val to_string : t -> string

(** {1 Reference semantics} *)

val eval : t -> env:(string * float array) list -> float array
(** Evaluate on concrete inputs (all inputs must share one length). The
    result is a singleton array for scalar patterns. *)

(** {1 Fusion (the "high-level optimizations" of Figure 1 step 1)} *)

type fused =
  | Fused_map of { f : elt; srcs : (string * Dhdl_ir.Dtype.t) list }
  | Fused_reduce of { op : Dhdl_ir.Op.t; f : elt; srcs : (string * Dhdl_ir.Dtype.t) list }
  | Fused_outer of {
      f : elt;  (** Args 0..|a|-1 come from the row inputs, the rest from the column inputs. *)
      a_srcs : (string * Dhdl_ir.Dtype.t) list;
      b_srcs : (string * Dhdl_ir.Dtype.t) list;
      reduce : Dhdl_ir.Op.t option;
    }

val fuse : t -> fused
(** Collapse arbitrary [Emap] compositions (and a trailing [Ereduce]) into a
    single element function over the leaf inputs: vertical loop fusion.
    Raises [Failure] on reductions nested under maps (not streamable). *)

val fused_ops : fused -> int
(** Primitive-operation count of the fused body (for tests and reports). *)

(** {1 Lowering to DHDL (step 1's code generation)} *)

val lower :
  name:string ->
  n:int ->
  ?m:int ->
  ?tile:int ->
  ?tile_b:int ->
  ?par:int ->
  ?meta:bool ->
  t ->
  Dhdl_ir.Ir.design
(** Tile and emit the pattern as a DHDL design: tile loads for every input,
    one fused Pipe (map -> store, reduce -> reduction tree into a register
    with a MetaPipe-level accumulator), a tile store for map outputs. The
    output collection/scalar is named ["out"]. Outer patterns additionally
    take the column length [m] (default [n]) and tile [tile_b]; their 2-D
    output is n x m row-major. Defaults: tile 1024 (clamped to a divisor of
    [n]), par 4, meta true. *)
