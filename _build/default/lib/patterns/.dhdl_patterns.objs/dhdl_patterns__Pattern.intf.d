lib/patterns/pattern.mli: Dhdl_ir
