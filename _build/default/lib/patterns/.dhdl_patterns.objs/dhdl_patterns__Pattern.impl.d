lib/patterns/pattern.ml: Array Dhdl_ir Dhdl_util Hashtbl List Option Printf String
