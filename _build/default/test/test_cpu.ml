(* Tests for the CPU baseline layer: the reference kernels (functional
   ground truth for the benchmarks) and the roofline cost model. *)

module K = Dhdl_cpu.Kernels
module CM = Dhdl_cpu.Cost_model
module Rng = Dhdl_util.Rng

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------- Kernels --------------------------------- *)

let test_dotproduct () =
  check_float "known" 32.0 (K.dotproduct [| 1.0; 2.0; 3.0 |] [| 4.0; 5.0; 6.0 |]);
  check_float "empty" 0.0 (K.dotproduct [||] [||])

let test_outerprod () =
  let o = K.outerprod [| 1.0; 2.0 |] [| 3.0; 4.0; 5.0 |] in
  Alcotest.(check (array (float 0.0))) "2x3" [| 3.0; 4.0; 5.0; 6.0; 8.0; 10.0 |] o

let naive_gemm ~n ~m ~k a b =
  Array.init (n * m) (fun idx ->
      let i = idx / m and j = idx mod m in
      let acc = ref 0.0 in
      for kk = 0 to k - 1 do
        acc := !acc +. (a.((i * k) + kk) *. b.((kk * m) + j))
      done;
      !acc)

let prop_gemm_matches_naive =
  QCheck.Test.make ~name:"gemm matches naive" ~count:50 QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 1) in
      let n = 1 + Rng.int rng 6 and m = 1 + Rng.int rng 6 and k = 1 + Rng.int rng 6 in
      let a = Array.init (n * k) (fun _ -> Rng.float_in rng (-2.0) 2.0) in
      let b = Array.init (k * m) (fun _ -> Rng.float_in rng (-2.0) 2.0) in
      let got = K.gemm ~n ~m ~k a b and want = naive_gemm ~n ~m ~k a b in
      Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-6) got want)

let test_gemm_identity () =
  let i2 = [| 1.0; 0.0; 0.0; 1.0 |] in
  let a = [| 5.0; 6.0; 7.0; 8.0 |] in
  Alcotest.(check (array (float 1e-9))) "I*A" a (K.gemm ~n:2 ~m:2 ~k:2 i2 a)

let test_tpchq6_predicates () =
  (* One row per predicate boundary. *)
  let prices = [| 10.0; 10.0; 10.0; 10.0; 10.0 |] in
  let discounts = [| 0.06; 0.04; 0.06; 0.06; 0.07 |] in
  let quantities = [| 10.0; 10.0; 30.0; 10.0; 23.0 |] in
  let dates = [| 5.5; 5.5; 5.5; 7.5; 5.0 |] in
  (* Row 0 passes; row 1 fails discount; row 2 fails quantity; row 3 fails
     date; row 4 passes on all boundaries. *)
  check_float "selective sum" ((10.0 *. 0.06) +. (10.0 *. 0.07))
    (K.tpchq6 ~prices ~discounts ~quantities ~dates)

let test_cndf_properties () =
  check_float "cndf(0)" 0.5 (K.cndf 0.0);
  Alcotest.(check (float 1e-7)) "symmetry" 1.0 (K.cndf 1.3 +. K.cndf (-1.3));
  check_bool "monotone" true (K.cndf 1.0 > K.cndf 0.5);
  check_bool "tails" true (K.cndf 6.0 > 0.999 && K.cndf (-6.0) < 0.001)

let prop_blackscholes_put_call_parity =
  (* C - P = S - K e^{-rT}: an identity independent of the CNDF details. *)
  QCheck.Test.make ~name:"put-call parity" ~count:100 QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 3) in
      let s = Rng.float_in rng 10.0 200.0 and k = Rng.float_in rng 10.0 200.0 in
      let t = Rng.float_in rng 0.1 5.0 in
      let rate = 0.03 and vol = 0.25 in
      let call =
        (K.blackscholes ~spot:[| s |] ~strike:[| k |] ~time:[| t |] ~rate ~volatility:vol
           ~otype:[| 0.0 |]).(0)
      in
      let put =
        (K.blackscholes ~spot:[| s |] ~strike:[| k |] ~time:[| t |] ~rate ~volatility:vol
           ~otype:[| 1.0 |]).(0)
      in
      Float.abs (call -. put -. (s -. (k *. exp (-.rate *. t)))) < 1e-6)

let test_blackscholes_call_value_bounds () =
  let price =
    (K.blackscholes ~spot:[| 100.0 |] ~strike:[| 100.0 |] ~time:[| 1.0 |] ~rate:0.02
       ~volatility:0.3 ~otype:[| 0.0 |]).(0)
  in
  (* ATM 1-year call at 30% vol is worth roughly 12-13% of spot. *)
  check_bool "plausible premium" true (price > 8.0 && price < 18.0)

let test_gda_symmetric () =
  let rng = Rng.create 8 in
  let rows = 10 and cols = 4 in
  let x = Array.init (rows * cols) (fun _ -> Rng.float_in rng (-1.0) 1.0) in
  let y = Array.init rows (fun _ -> if Rng.bool rng then 1.0 else 0.0) in
  let mu0 = Array.init cols (fun _ -> Rng.float_in rng (-1.0) 1.0) in
  let mu1 = Array.init cols (fun _ -> Rng.float_in rng (-1.0) 1.0) in
  let sigma = K.gda ~rows ~cols ~x ~y ~mu0 ~mu1 in
  for i = 0 to cols - 1 do
    for j = 0 to cols - 1 do
      Alcotest.(check (float 1e-9)) "symmetric" sigma.((i * cols) + j) sigma.((j * cols) + i)
    done;
    check_bool "nonneg diagonal" true (sigma.((i * cols) + i) >= 0.0)
  done

let test_gda_zero_when_centered () =
  (* Rows exactly at their class mean contribute nothing. *)
  let mu0 = [| 1.0; 2.0 |] and mu1 = [| -1.0; 0.5 |] in
  let x = [| 1.0; 2.0; -1.0; 0.5 |] in
  let sigma = K.gda ~rows:2 ~cols:2 ~x ~y:[| 0.0; 1.0 |] ~mu0 ~mu1 in
  Array.iter (fun v -> check_float "zero scatter" 0.0 v) sigma

let test_kmeans_obvious_clusters () =
  (* Two tight groups around 0 and 100. *)
  let data = [| 0.1; 0.2; 99.9; 100.1; 0.3; 100.0 |] in
  let centroids = [| 1.0; 90.0 |] in
  let sums, counts = K.kmeans_sums ~points:6 ~dims:1 ~k:2 ~data ~centroids in
  check_float "cluster sizes" 3.0 counts.(0);
  check_float "cluster sizes" 3.0 counts.(1);
  Alcotest.(check (float 1e-6)) "sum 0" 0.6 sums.(0);
  Alcotest.(check (float 1e-6)) "sum 1" 300.0 sums.(1);
  let next = K.kmeans_step ~points:6 ~dims:1 ~k:2 ~data ~centroids in
  Alcotest.(check (float 1e-6)) "centroid 0" 0.2 next.(0);
  Alcotest.(check (float 1e-6)) "centroid 1" 100.0 next.(1)

let test_kmeans_empty_cluster () =
  let data = [| 0.0; 1.0 |] in
  let centroids = [| 0.5; 1000.0 |] in
  let next = K.kmeans_step ~points:2 ~dims:1 ~k:2 ~data ~centroids in
  check_float "empty keeps centroid" 1000.0 next.(1)

let prop_kmeans_counts_sum =
  QCheck.Test.make ~name:"cluster counts sum to n" ~count:50 QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 9) in
      let n = 5 + Rng.int rng 40 and d = 1 + Rng.int rng 4 and k = 1 + Rng.int rng 5 in
      let data = Array.init (n * d) (fun _ -> Rng.float_in rng (-5.0) 5.0) in
      let cents = Array.init (k * d) (fun _ -> Rng.float_in rng (-5.0) 5.0) in
      let _, counts = K.kmeans_sums ~points:n ~dims:d ~k ~data ~centroids:cents in
      int_of_float (Array.fold_left ( +. ) 0.0 counts) = n)

(* ------------------------- Cost model ------------------------------ *)

let test_roofline_max () =
  let compute_bound = { CM.wl_name = "c"; flops = 1e12; bytes = 1.0; compute_eff = 1.0; bw_eff = 1.0 } in
  let memory_bound = { CM.wl_name = "m"; flops = 1.0; bytes = 1e12; compute_eff = 1.0; bw_eff = 1.0 } in
  check_bool "compute side" true (CM.seconds compute_bound > 1.0);
  check_bool "memory side" true (CM.seconds memory_bound > 1.0)

let test_machine_constants () =
  let m = CM.xeon_e5_2630 in
  check_bool "6 cores at 2.3GHz" true (m.CM.cores = 6 && m.CM.ghz = 2.3);
  check_bool "bandwidth" true (m.CM.mem_bw_gbs = 42.6)

let test_workloads_positive () =
  let wls =
    [
      CM.dotproduct ~n:1000;
      CM.outerprod ~n:100 ~m:100;
      CM.gemm ~n:64 ~m:64 ~k:64;
      CM.tpchq6 ~n:1000;
      CM.blackscholes ~n:1000;
      CM.gda ~rows:100 ~cols:16;
      CM.kmeans ~points:100 ~dims:8 ~k:4;
    ]
  in
  List.iter
    (fun wl ->
      check_bool (wl.CM.wl_name ^ " flops") true (wl.CM.flops > 0.0);
      check_bool (wl.CM.wl_name ^ " bytes") true (wl.CM.bytes > 0.0);
      check_bool (wl.CM.wl_name ^ " time") true (CM.seconds wl > 0.0))
    wls

let test_gemm_cpu_rate () =
  (* Section V.D: OpenBLAS at ~89 GFLOP/s on the paper's gemm. *)
  let wl = CM.gemm ~n:1536 ~m:1536 ~k:1536 in
  let gflops = wl.CM.flops /. CM.seconds wl /. 1e9 in
  check_bool "~89 GFLOP/s" true (gflops > 70.0 && gflops < 100.0)

let test_streaming_scales_linearly () =
  let t1 = CM.seconds (CM.dotproduct ~n:1_000_000) in
  let t4 = CM.seconds (CM.dotproduct ~n:4_000_000) in
  Alcotest.(check (float 0.01)) "4x data, 4x time" 4.0 (t4 /. t1)

let () =
  Alcotest.run "cpu"
    [
      ( "kernels",
        [
          Alcotest.test_case "dotproduct" `Quick test_dotproduct;
          Alcotest.test_case "outerprod" `Quick test_outerprod;
          Alcotest.test_case "gemm identity" `Quick test_gemm_identity;
          Alcotest.test_case "tpchq6 predicates" `Quick test_tpchq6_predicates;
          Alcotest.test_case "cndf" `Quick test_cndf_properties;
          Alcotest.test_case "blackscholes bounds" `Quick test_blackscholes_call_value_bounds;
          Alcotest.test_case "gda symmetric" `Quick test_gda_symmetric;
          Alcotest.test_case "gda centered" `Quick test_gda_zero_when_centered;
          Alcotest.test_case "kmeans clusters" `Quick test_kmeans_obvious_clusters;
          Alcotest.test_case "kmeans empty cluster" `Quick test_kmeans_empty_cluster;
          qtest prop_gemm_matches_naive;
          qtest prop_blackscholes_put_call_parity;
          qtest prop_kmeans_counts_sum;
        ] );
      ( "cost_model",
        [
          Alcotest.test_case "roofline max" `Quick test_roofline_max;
          Alcotest.test_case "machine constants" `Quick test_machine_constants;
          Alcotest.test_case "workloads positive" `Quick test_workloads_positive;
          Alcotest.test_case "gemm rate" `Quick test_gemm_cpu_rate;
          Alcotest.test_case "streaming linear" `Quick test_streaming_scales_linearly;
        ] );
    ]
