(* Tests for the estimation stack: template characterization, the
   analytical area pass, the random design generator, the NN corrections
   and the assembled hybrid estimator.

   The expensive fixtures (characterization, NN training) are built once
   and shared across cases. *)

module Ir = Dhdl_ir.Ir
module Op = Dhdl_ir.Op
module Dtype = Dhdl_ir.Dtype
module B = Dhdl_ir.Builder
module R = Dhdl_device.Resources
module Target = Dhdl_device.Target
module Char_ = Dhdl_model.Characterization
module Area_model = Dhdl_model.Area_model
module Design_gen = Dhdl_model.Design_gen
module Nn = Dhdl_model.Nn_correction
module Cycle_model = Dhdl_model.Cycle_model
module Estimator = Dhdl_model.Estimator
module Stats = Dhdl_util.Stats

let dev = Target.stratix_v
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let char = lazy (Char_.default ())
let estimator = lazy (Estimator.create ~seed:77 ~train_samples:120 ~epochs:250 ())

(* ------------------------- Characterization ------------------------ *)

let test_char_runs () =
  let c = Lazy.force char in
  (* "Most templates require about six synthesized designs": the whole
     characterization is a few dozen toolchain runs. *)
  check_bool "microdesign count" true
    (c.Char_.microdesigns_synthesized >= 20 && c.Char_.microdesigns_synthesized <= 80)

let test_char_memoized () =
  let a = Char_.default () and b = Char_.default () in
  check_bool "same instance" true (a == b)

let test_char_fits_micro_pipe () =
  (* The fitted pipe model must predict a characterized point closely. *)
  let c = Lazy.force char in
  let pred = Dhdl_ml.Linreg.predict c.Char_.pipe_overhead [| 1.0; 1.0 |] in
  check_bool "positive overhead" true (pred > 10.0 && pred < 2000.0)

(* ------------------------- Design generator ------------------------ *)

let test_corpus_valid () =
  List.iter
    (fun d ->
      Alcotest.(check (list string)) (d.Ir.d_name ^ " valid") [] (Dhdl_ir.Analysis.validate d))
    (Design_gen.corpus ~seed:123 60)

let test_corpus_deterministic () =
  let a = Design_gen.corpus ~seed:5 10 and b = Design_gen.corpus ~seed:5 10 in
  List.iter2
    (fun x y -> check_int "same hash" (Ir.design_hash x) (Ir.design_hash y))
    a b

let test_corpus_diverse () =
  let ds = Design_gen.corpus ~seed:7 40 in
  let shapes = List.sort_uniq compare (List.map (fun d -> List.hd (String.split_on_char '_' (String.sub d.Ir.d_name 4 (String.length d.Ir.d_name - 4)))) ds) in
  check_bool "several shapes" true (List.length shapes >= 4)

(* ------------------------- Area model ------------------------------ *)

let test_features_shape () =
  let d = List.hd (Design_gen.corpus ~seed:9 1) in
  let raw = Area_model.raw_estimate (Lazy.force char) dev d in
  check_int "eleven NN inputs" Area_model.feature_count
    (Array.length (Area_model.features dev raw))

let test_raw_tracks_truth () =
  (* The analytical pass should land within ~15% of the toolchain's pre-P&R
     LUT counts across a corpus sample. *)
  let c = Lazy.force char in
  let designs = Design_gen.corpus ~seed:31 15 in
  let errs =
    List.map
      (fun d ->
        let est = float_of_int (R.luts (Area_model.raw_estimate c dev d).Area_model.resources) in
        let act = float_of_int (R.luts (Dhdl_synth.Toolchain.netlist ~dev d).Dhdl_synth.Netlist.raw) in
        Stats.percent_error ~actual:act ~predicted:est)
      designs
  in
  check_bool "mean raw LUT error < 15%" true (Stats.mean errs < 15.0)

let test_bram_estimate_geometry () =
  let b = B.create "g" in
  let m = B.bram b "m" Dtype.float32 [ 2048 ] in
  let top =
    B.pipe ~label:"p" ~counters:[ ("i", 0, 2048, 1) ] (fun pb ->
        ignore (B.load pb m [ B.iter "i" ]))
  in
  let d = B.finish b ~top in
  check_int "4 blocks for 2048 words" 4 (Area_model.bram_blocks_estimate dev (Ir.find_mem d "m"))

let test_critical_path_exposed () =
  let b = B.create "cp" in
  let top =
    B.pipe ~label:"p" ~counters:[ ("i", 0, 4, 1) ] (fun pb ->
        let m = B.op pb Op.Mul [ B.const 2.0; B.const 3.0 ] in
        ignore (B.add pb m (B.const 1.0)))
  in
  let d = B.finish b ~top in
  let body = Dhdl_ir.Traverse.body_stmts (List.hd (Dhdl_ir.Traverse.pipes d)) in
  check_int "mul+add" 13 (Area_model.critical_path body)

(* ------------------------- Cycle model ----------------------------- *)

let test_cycle_model_matches_formula () =
  (* Sequential loop: N x sum; MetaPipe: (N-1) max + sum. *)
  let mk pipelined =
    let b = B.create (Printf.sprintf "cyc%b" pipelined) in
    let p1 =
      B.pipe ~label:"a" ~counters:[ ("i", 0, 100, 1) ] (fun pb ->
          ignore (B.op pb ~ty:Dtype.int32 Op.Add [ B.iter "i"; B.const 1.0 ]))
    in
    let p2 =
      B.pipe ~label:"b" ~counters:[ ("i", 0, 300, 1) ] (fun pb ->
          ignore (B.op pb ~ty:Dtype.int32 Op.Add [ B.iter "i"; B.const 1.0 ]))
    in
    B.finish b ~top:(B.metapipe ~label:"m" ~counters:[ ("t", 0, 10, 1) ] ~pipelined [ p1; p2 ])
  in
  let seq = Cycle_model.estimate (mk false) in
  let piped = Cycle_model.estimate (mk true) in
  (* Stage cycles: depth 1 + (trip-1) * II + 4 = 104 and 304. *)
  Alcotest.(check (float 1.0)) "sequential" (10.0 *. (104.0 +. 304.0)) seq;
  Alcotest.(check (float 1.0)) "metapipe" ((9.0 *. 304.0) +. 104.0 +. 304.0) piped

let test_cycle_estimate_close_to_sim () =
  let designs = Design_gen.corpus ~seed:37 12 in
  let errs =
    List.map
      (fun d ->
        Stats.percent_error
          ~actual:(Dhdl_sim.Perf_sim.simulate ~dev d).Dhdl_sim.Perf_sim.cycles
          ~predicted:(Cycle_model.estimate d))
      designs
  in
  check_bool "mean runtime error < 10%" true (Stats.mean errs < 10.0)

(* ------------------------- NN corrections -------------------------- *)

let test_nn_trains () =
  let est = Lazy.force estimator in
  let nn = Estimator.corrections est in
  let r, g, u = Nn.training_mse nn in
  check_bool "converged" true (r < 1e-3 && g < 1e-3 && u < 1e-3);
  check_int "samples" 120 (Nn.samples_used nn)

let test_nn_corrections_nonnegative () =
  let est = Lazy.force estimator in
  let nn = Estimator.corrections est in
  let c = Lazy.force char in
  List.iter
    (fun d ->
      let raw = Area_model.raw_estimate c dev d in
      let corr = Nn.correct nn raw in
      check_bool "route >= 0" true (corr.Nn.routing_luts >= 0);
      check_bool "regs >= 0" true (corr.Nn.duplicated_regs >= 0);
      check_bool "unavail >= 0" true (corr.Nn.unavailable_luts >= 0);
      check_bool "brams >= 0" true (corr.Nn.duplicated_brams >= 0))
    (Design_gen.corpus ~seed:91 8)

(* ------------------------- Estimator ------------------------------- *)

let holdout () = Design_gen.corpus ~seed:4242 15

let test_estimator_alm_accuracy () =
  (* Held-out designs (different seed from training): mean ALM error within
     the paper's band. *)
  let est = Lazy.force estimator in
  let errs =
    List.map
      (fun d ->
        let e = Estimator.estimate est d in
        let rpt = Dhdl_synth.Toolchain.synthesize ~dev d in
        Stats.percent_error
          ~actual:(float_of_int rpt.Dhdl_synth.Report.alms)
          ~predicted:(float_of_int e.Estimator.area.Estimator.alms))
      (holdout ())
  in
  check_bool "mean ALM error < 10%" true (Stats.mean errs < 10.0)

let test_estimator_correction_helps () =
  (* The hybrid scheme's point: corrected estimates beat raw-only ones. *)
  let est = Lazy.force estimator in
  let raw_errs, cor_errs =
    List.split
      (List.map
         (fun d ->
           let rpt = Dhdl_synth.Toolchain.synthesize ~dev d in
           let actual = float_of_int rpt.Dhdl_synth.Report.alms in
           let raw = Estimator.estimate_area_uncorrected est d in
           let cor = Estimator.estimate_area est d in
           ( Stats.percent_error ~actual ~predicted:(float_of_int raw.Estimator.alms),
             Stats.percent_error ~actual ~predicted:(float_of_int cor.Estimator.alms) ))
         (holdout ()))
  in
  check_bool "NN correction reduces mean error" true (Stats.mean cor_errs < Stats.mean raw_errs)

let test_estimator_deterministic () =
  let est = Lazy.force estimator in
  let d = List.hd (holdout ()) in
  let a = Estimator.estimate est d and b = Estimator.estimate est d in
  check_int "same alms" a.Estimator.area.Estimator.alms b.Estimator.area.Estimator.alms;
  Alcotest.(check (float 0.0)) "same cycles" a.Estimator.cycles b.Estimator.cycles

let test_estimator_speed () =
  (* The headline property: estimation is milliseconds, not hours. *)
  let est = Lazy.force estimator in
  let d = List.hd (holdout ()) in
  let _, elapsed = Estimator.timed_estimate est d in
  check_bool "sub-50ms" true (elapsed < 0.05)

let test_estimator_fits () =
  let est = Lazy.force estimator in
  let big = { Estimator.alms = 10_000_000; luts = 0; regs = 0; dsps = 0; brams = 0;
              routing_luts = 0; unavailable_luts = 0; duplicated_regs = 0; duplicated_brams = 0 } in
  check_bool "too big" false (Estimator.fits est big);
  let ok = { big with Estimator.alms = 100 } in
  check_bool "fits" true (Estimator.fits est ok);
  let alm_pct, _, _ = Estimator.utilization est ok in
  check_bool "utilization small" true (alm_pct < 1.0)

let test_estimator_save_load () =
  let est = Lazy.force estimator in
  let path = Filename.temp_file "dhdl_est" ".bin" in
  Estimator.save est path;
  (match Estimator.load path with
  | None -> Alcotest.fail "expected reload to succeed"
  | Some est' ->
    let d = List.hd (holdout ()) in
    check_int "same estimate after reload"
      (Estimator.estimate est d).Estimator.area.Estimator.alms
      (Estimator.estimate est' d).Estimator.area.Estimator.alms);
  Sys.remove path;
  check_bool "missing file" true (Estimator.load path = None);
  (* Corrupt / foreign files are rejected, not crashed on. *)
  let bad = Filename.temp_file "dhdl_bad" ".bin" in
  let oc = open_out bad in
  output_string oc "not an estimator";
  close_out oc;
  check_bool "garbage rejected" true (Estimator.load bad = None);
  Sys.remove bad

let () =
  Alcotest.run "model"
    [
      ( "characterization",
        [
          Alcotest.test_case "run count" `Quick test_char_runs;
          Alcotest.test_case "memoized" `Quick test_char_memoized;
          Alcotest.test_case "pipe overhead fit" `Quick test_char_fits_micro_pipe;
        ] );
      ( "design_gen",
        [
          Alcotest.test_case "corpus valid" `Quick test_corpus_valid;
          Alcotest.test_case "deterministic" `Quick test_corpus_deterministic;
          Alcotest.test_case "diverse shapes" `Quick test_corpus_diverse;
        ] );
      ( "area_model",
        [
          Alcotest.test_case "feature shape" `Quick test_features_shape;
          Alcotest.test_case "raw tracks truth" `Quick test_raw_tracks_truth;
          Alcotest.test_case "bram geometry" `Quick test_bram_estimate_geometry;
          Alcotest.test_case "critical path" `Quick test_critical_path_exposed;
        ] );
      ( "cycle_model",
        [
          Alcotest.test_case "controller formulas" `Quick test_cycle_model_matches_formula;
          Alcotest.test_case "close to simulator" `Quick test_cycle_estimate_close_to_sim;
        ] );
      ( "nn",
        [
          Alcotest.test_case "training converges" `Quick test_nn_trains;
          Alcotest.test_case "corrections nonnegative" `Quick test_nn_corrections_nonnegative;
        ] );
      ( "estimator",
        [
          Alcotest.test_case "holdout ALM accuracy" `Quick test_estimator_alm_accuracy;
          Alcotest.test_case "correction helps" `Quick test_estimator_correction_helps;
          Alcotest.test_case "deterministic" `Quick test_estimator_deterministic;
          Alcotest.test_case "speed" `Quick test_estimator_speed;
          Alcotest.test_case "fits/utilization" `Quick test_estimator_fits;
          Alcotest.test_case "save/load" `Quick test_estimator_save_load;
        ] );
    ]
