(* Unit and property tests for the utility layer: PRNG, statistics, integer
   arithmetic, linear algebra, Pareto extraction and text rendering. *)

module Rng = Dhdl_util.Rng
module Stats = Dhdl_util.Stats
module Intmath = Dhdl_util.Intmath
module Matrix = Dhdl_util.Matrix
module Pareto = Dhdl_util.Pareto
module Texttable = Dhdl_util.Texttable
module Asciiplot = Dhdl_util.Asciiplot

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------- Rng ------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let sa = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let sb = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  check_bool "streams differ" true (sa <> sb)

let test_rng_zero_seed () =
  let a = Rng.create 0 in
  check_bool "zero seed works" true (Rng.int a 10 >= 0)

let test_rng_copy () =
  let a = Rng.create 7 in
  ignore (Rng.int a 100);
  let b = Rng.copy a in
  check_int "copy continues identically" (Rng.int a 1000) (Rng.int b 1000)

let test_rng_split () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let sa = List.init 10 (fun _ -> Rng.int a 1000) in
  let sb = List.init 10 (fun _ -> Rng.int b 1000) in
  check_bool "split decorrelates" true (sa <> sb)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"rng int in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let prop_rng_int_in =
  QCheck.Test.make ~name:"rng int_in inclusive" ~count:500
    QCheck.(triple small_int (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, width) ->
      let r = Rng.create seed in
      let v = Rng.int_in r lo (lo + width) in
      v >= lo && v <= lo + width)

let prop_rng_float_bounds =
  QCheck.Test.make ~name:"rng float in bounds" ~count:300 QCheck.small_int (fun seed ->
      let r = Rng.create seed in
      let v = Rng.float r 3.5 in
      v >= 0.0 && v < 3.5)

let test_rng_gaussian_stats () =
  let r = Rng.create 13 in
  let xs = List.init 20_000 (fun _ -> Rng.gaussian r ~mean:5.0 ~sigma:2.0) in
  Alcotest.(check (float 0.1)) "mean" 5.0 (Stats.mean xs);
  Alcotest.(check (float 0.1)) "sigma" 2.0 (Stats.stddev xs)

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (list_of_size Gen.(1 -- 30) int))
    (fun (seed, xs) ->
      let arr = Array.of_list xs in
      Rng.shuffle (Rng.create seed) arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

let test_sample_distinct () =
  let r = Rng.create 3 in
  let xs = List.init 50 (fun i -> i) in
  let s = Rng.sample r xs 20 in
  check_int "size" 20 (List.length s);
  check_int "distinct" 20 (List.length (List.sort_uniq compare s));
  let all = Rng.sample r xs 100 in
  check_int "capped at population" 50 (List.length all)

let test_choice_membership () =
  let r = Rng.create 5 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 50 do
    check_bool "member" true (Array.mem (Rng.choice r arr) arr)
  done;
  Alcotest.check_raises "empty list" (Invalid_argument "Rng.choice_list: empty list") (fun () ->
      ignore (Rng.choice_list r []))

(* ------------------------- Stats ----------------------------------- *)

let test_mean () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "empty" 0.0 (Stats.mean [])

let test_geomean () =
  check_float "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ] ** 1.0 |> fun x -> Float.round x);
  check_float "empty" 0.0 (Stats.geomean [])

let test_stddev () =
  check_float "constant" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  Alcotest.(check (float 1e-6)) "known" (sqrt 2.0) (Stats.stddev [ 1.0; 3.0; 1.0; 3.0 ] *. sqrt 2.0)

let test_median () =
  check_float "odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  check_float "even" 2.5 (Stats.median [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "empty" 0.0 (Stats.median [])

let test_minmax () =
  check_float "min" (-1.0) (Stats.minimum [ 3.0; -1.0; 2.0 ]);
  check_float "max" 3.0 (Stats.maximum [ 3.0; -1.0; 2.0 ])

let test_percent_error () =
  check_float "basic" 10.0 (Stats.percent_error ~actual:100.0 ~predicted:110.0);
  check_float "under" 10.0 (Stats.percent_error ~actual:100.0 ~predicted:90.0);
  check_float "zero-zero" 0.0 (Stats.percent_error ~actual:0.0 ~predicted:0.0);
  check_float "zero-actual" 100.0 (Stats.percent_error ~actual:0.0 ~predicted:5.0)

let test_mape () =
  check_float "mape" 10.0 (Stats.mean_abs_percent_error [ (100.0, 110.0); (100.0, 90.0) ])

let test_correlation () =
  check_float "perfect" 1.0 (Stats.correlation [ 1.0; 2.0; 3.0 ] [ 2.0; 4.0; 6.0 ]);
  check_float "anti" (-1.0) (Stats.correlation [ 1.0; 2.0; 3.0 ] [ 3.0; 2.0; 1.0 ]);
  check_float "degenerate" 0.0 (Stats.correlation [ 1.0; 1.0 ] [ 2.0; 3.0 ])

let test_rank_preserved () =
  check_bool "kept" true (Stats.rank_preserved [ 1.0; 5.0; 3.0 ] [ 10.0; 50.0; 30.0 ]);
  check_bool "broken" false (Stats.rank_preserved [ 1.0; 5.0; 3.0 ] [ 10.0; 20.0; 30.0 ])

(* ------------------------- Intmath --------------------------------- *)

let test_ceil_div () =
  check_int "exact" 4 (Intmath.ceil_div 12 3);
  check_int "round up" 5 (Intmath.ceil_div 13 3);
  check_int "one" 1 (Intmath.ceil_div 1 100)

let test_round_up () =
  check_int "round_up" 15 (Intmath.round_up 13 5);
  check_int "exact" 15 (Intmath.round_up 15 5)

let prop_gcd_lcm =
  QCheck.Test.make ~name:"gcd*lcm = a*b" ~count:300
    QCheck.(pair (int_range 1 10_000) (int_range 1 10_000))
    (fun (a, b) -> Intmath.gcd a b * Intmath.lcm a b = a * b)

let prop_divisors =
  QCheck.Test.make ~name:"divisors all divide and are complete" ~count:100
    QCheck.(int_range 1 2_000)
    (fun n ->
      let ds = Intmath.divisors n in
      List.for_all (fun d -> n mod d = 0) ds
      && List.length ds = List.length (List.filter (fun d -> n mod d = 0) (List.init n (fun i -> i + 1)))
      && List.sort compare ds = ds)

let test_divisors_known () =
  Alcotest.(check (list int)) "12" [ 1; 2; 3; 4; 6; 12 ] (Intmath.divisors 12);
  Alcotest.(check (list int)) "capped" [ 1; 2; 3; 4 ] (Intmath.divisors_up_to 12 5)

let test_pow2 () =
  Alcotest.(check (list int)) "pow2" [ 1; 2; 4; 8 ] (Intmath.pow2_up_to 8);
  check_bool "is_pow2 yes" true (Intmath.is_pow2 64);
  check_bool "is_pow2 no" false (Intmath.is_pow2 48);
  check_bool "is_pow2 zero" false (Intmath.is_pow2 0)

let prop_next_pow2 =
  QCheck.Test.make ~name:"next_pow2 minimal power" ~count:200
    QCheck.(int_range 1 100_000)
    (fun n ->
      let p = Intmath.next_pow2 n in
      Intmath.is_pow2 p && p >= n && (p = 1 || p / 2 < n))

let test_ilog2 () =
  check_int "1" 0 (Intmath.ilog2_ceil 1);
  check_int "2" 1 (Intmath.ilog2_ceil 2);
  check_int "3" 2 (Intmath.ilog2_ceil 3);
  check_int "1024" 10 (Intmath.ilog2_ceil 1024)

let test_clamp_prod () =
  check_int "clamp low" 2 (Intmath.clamp ~lo:2 ~hi:8 0);
  check_int "clamp high" 8 (Intmath.clamp ~lo:2 ~hi:8 99);
  check_int "prod" 24 (Intmath.prod [ 2; 3; 4 ]);
  check_int "prod empty" 1 (Intmath.prod [])

(* ------------------------- Matrix ---------------------------------- *)

let test_solve_known () =
  let a = Matrix.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Matrix.solve a [| 5.0; 10.0 |] in
  Alcotest.(check (float 1e-9)) "x0" 1.0 x.(0);
  Alcotest.(check (float 1e-9)) "x1" 3.0 x.(1)

let test_solve_singular () =
  let a = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular" (Failure "Matrix.solve: singular system") (fun () ->
      ignore (Matrix.solve a [| 1.0; 2.0 |]))

let prop_solve_residual =
  QCheck.Test.make ~name:"solve residual small" ~count:100 QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 1) in
      let n = 4 in
      let a = Matrix.create n n in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          Matrix.set a i j (Rng.float_in rng (-1.0) 1.0)
        done;
        (* Diagonal dominance keeps the system well-conditioned. *)
        Matrix.set a i i (Rng.float_in rng 4.0 6.0)
      done;
      let b = Array.init n (fun _ -> Rng.float_in rng (-5.0) 5.0) in
      let x = Matrix.solve a b in
      let r = Matrix.mul_vec a x in
      Array.for_all2 (fun ri bi -> Float.abs (ri -. bi) < 1e-6) r b)

let test_transpose_involution () =
  let a = Matrix.of_rows [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  let t = Matrix.transpose (Matrix.transpose a) in
  for i = 0 to 1 do
    for j = 0 to 2 do
      check_float "tt = id" (Matrix.get a i j) (Matrix.get t i j)
    done
  done

let test_identity_mul () =
  let a = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let p = Matrix.mul (Matrix.identity 2) a in
  for i = 0 to 1 do
    for j = 0 to 1 do
      check_float "I*A = A" (Matrix.get a i j) (Matrix.get p i j)
    done
  done

let test_least_squares_exact () =
  (* y = 3x + 1 fit from 4 points. *)
  let a = Matrix.of_rows [| [| 0.0; 1.0 |]; [| 1.0; 1.0 |]; [| 2.0; 1.0 |]; [| 3.0; 1.0 |] |] in
  let sol = Matrix.least_squares a [| 1.0; 4.0; 7.0; 10.0 |] in
  Alcotest.(check (float 1e-4)) "slope" 3.0 sol.(0);
  Alcotest.(check (float 1e-4)) "intercept" 1.0 sol.(1)

(* ------------------------- Pareto ---------------------------------- *)

let test_dominates () =
  check_bool "strict" true (Pareto.dominates (1.0, 1.0) (2.0, 2.0));
  check_bool "partial" true (Pareto.dominates (1.0, 2.0) (2.0, 2.0));
  check_bool "equal" false (Pareto.dominates (1.0, 1.0) (1.0, 1.0));
  check_bool "incomparable" false (Pareto.dominates (1.0, 3.0) (2.0, 2.0))

let test_frontier_known () =
  let pts = [ (1.0, 5.0); (2.0, 3.0); (3.0, 4.0); (4.0, 1.0); (5.0, 2.0) ] in
  let f = Pareto.frontier (fun p -> p) pts in
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "frontier" [ (1.0, 5.0); (2.0, 3.0); (4.0, 1.0) ] f

let pair_gen = QCheck.(list_of_size Gen.(2 -- 40) (pair (float_range 0.0 10.0) (float_range 0.0 10.0)))

let prop_frontier_nondominated =
  QCheck.Test.make ~name:"frontier members are non-dominated" ~count:200 pair_gen (fun pts ->
      let f = Pareto.frontier (fun p -> p) pts in
      List.for_all (fun m -> not (List.exists (fun p -> Pareto.dominates p m) pts)) f)

let prop_frontier_covers =
  QCheck.Test.make ~name:"non-members are dominated or duplicates" ~count:200 pair_gen (fun pts ->
      let f = Pareto.frontier (fun p -> p) pts in
      List.for_all
        (fun p -> List.mem p f || List.exists (fun m -> Pareto.dominates m p || m = p) f)
        pts)

let prop_frontier_subset =
  QCheck.Test.make ~name:"frontier is a subset" ~count:200 pair_gen (fun pts ->
      List.for_all (fun m -> List.mem m pts) (Pareto.frontier (fun p -> p) pts))

let test_is_frontier_member () =
  let pts = [ (1.0, 5.0); (4.0, 1.0) ] in
  check_bool "member" true (Pareto.is_frontier_member (fun p -> p) pts (2.0, 2.0));
  check_bool "dominated" false (Pareto.is_frontier_member (fun p -> p) pts (5.0, 6.0))

(* ------------------------- Texttable / Asciiplot ------------------- *)

let test_commas () =
  Alcotest.(check string) "millions" "1,234,567" (Texttable.fmt_int_commas 1_234_567);
  Alcotest.(check string) "small" "42" (Texttable.fmt_int_commas 42);
  Alcotest.(check string) "negative" "-1,000" (Texttable.fmt_int_commas (-1000))

let test_render_table () =
  let s = Texttable.render ~header:[ "a"; "b" ] [ [ "x"; "1" ]; [ "long"; "22" ] ] in
  check_bool "has header" true (String.length s > 0);
  check_bool "contains row" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.trim l <> "" && String.length l >= 6))

let test_fmt () =
  Alcotest.(check string) "float" "3.14" (Texttable.fmt_float 3.14159);
  Alcotest.(check string) "pct" "12.3%" (Texttable.fmt_pct 12.34)

let test_asciiplot_degenerate () =
  (* Non-positive values on a log axis are dropped, not crashed on. *)
  let s =
    Asciiplot.render ~log_y:true
      [ { Asciiplot.label = '.'; points = [ (0.0, 0.0); (1.0, -5.0); (2.0, 100.0) ] } ]
  in
  check_bool "renders" true (String.length s > 0);
  (* A single point still renders (degenerate ranges). *)
  let one = Asciiplot.render [ { Asciiplot.label = '*'; points = [ (1.0, 1.0) ] } ] in
  check_bool "single point" true (String.contains one '*')

let test_asciiplot () =
  let s =
    Asciiplot.render ~width:20 ~height:5
      [ { Asciiplot.label = '.'; points = [ (0.0, 1.0); (1.0, 10.0) ] } ]
  in
  check_bool "has dot" true (String.contains s '.');
  Alcotest.(check string) "empty" "(no points)\n" (Asciiplot.render []);
  let logp =
    Asciiplot.render ~log_y:true [ { Asciiplot.label = '*'; points = [ (0.0, 10.0); (1.0, 1000.0) ] } ]
  in
  check_bool "log axis labeled" true (String.length logp > 0)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "zero seed" `Quick test_rng_zero_seed;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split" `Quick test_rng_split;
          Alcotest.test_case "gaussian stats" `Quick test_rng_gaussian_stats;
          Alcotest.test_case "sample distinct" `Quick test_sample_distinct;
          Alcotest.test_case "choice member" `Quick test_choice_membership;
          qtest prop_rng_int_bounds;
          qtest prop_rng_int_in;
          qtest prop_rng_float_bounds;
          qtest prop_shuffle_permutation;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "geomean" `Quick test_geomean;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "median" `Quick test_median;
          Alcotest.test_case "min max" `Quick test_minmax;
          Alcotest.test_case "percent error" `Quick test_percent_error;
          Alcotest.test_case "mape" `Quick test_mape;
          Alcotest.test_case "correlation" `Quick test_correlation;
          Alcotest.test_case "rank preserved" `Quick test_rank_preserved;
        ] );
      ( "intmath",
        [
          Alcotest.test_case "ceil_div" `Quick test_ceil_div;
          Alcotest.test_case "round_up" `Quick test_round_up;
          Alcotest.test_case "divisors known" `Quick test_divisors_known;
          Alcotest.test_case "pow2" `Quick test_pow2;
          Alcotest.test_case "ilog2" `Quick test_ilog2;
          Alcotest.test_case "clamp/prod" `Quick test_clamp_prod;
          qtest prop_gcd_lcm;
          qtest prop_divisors;
          qtest prop_next_pow2;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "solve known" `Quick test_solve_known;
          Alcotest.test_case "solve singular" `Quick test_solve_singular;
          Alcotest.test_case "transpose involution" `Quick test_transpose_involution;
          Alcotest.test_case "identity mul" `Quick test_identity_mul;
          Alcotest.test_case "least squares exact" `Quick test_least_squares_exact;
          qtest prop_solve_residual;
        ] );
      ( "pareto",
        [
          Alcotest.test_case "dominates" `Quick test_dominates;
          Alcotest.test_case "frontier known" `Quick test_frontier_known;
          Alcotest.test_case "is_frontier_member" `Quick test_is_frontier_member;
          qtest prop_frontier_nondominated;
          qtest prop_frontier_covers;
          qtest prop_frontier_subset;
        ] );
      ( "rendering",
        [
          Alcotest.test_case "commas" `Quick test_commas;
          Alcotest.test_case "table" `Quick test_render_table;
          Alcotest.test_case "fmt" `Quick test_fmt;
          Alcotest.test_case "asciiplot" `Quick test_asciiplot;
          Alcotest.test_case "asciiplot degenerate" `Quick test_asciiplot_degenerate;
        ] );
    ]
