(* Tests for the parallel-pattern frontend (Figure 1 step 1): reference
   semantics, fusion, lowering to DHDL, and the IR optimization passes. *)

module P = Dhdl_patterns.Pattern
module Ir = Dhdl_ir.Ir
module Op = Dhdl_ir.Op
module Dtype = Dhdl_ir.Dtype
module Transform = Dhdl_ir.Transform
module Interp = Dhdl_sim.Interp
module Rng = Dhdl_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-4))
let qtest = QCheck_alcotest.to_alcotest

let open_ops = P.(( +% ), ( -% ), ( *% ))
let () = ignore open_ops

(* ------------------------- Element expressions --------------------- *)

let test_elt_eval () =
  let e = P.((arg 0 *% arg 1) +% constf 1.0) in
  check_float "eval" 7.0 (P.eval_elt e [| 2.0; 3.0 |]);
  Alcotest.(check string) "to_string" "add(mul(x0, x1), 1)" (P.elt_to_string e)

(* ------------------------- Patterns and eval ----------------------- *)

let saxpy = P.(zip2 (fun x y -> (constf 2.0 *% x) +% y) (input "x") (input "y"))
let dot = P.(reduce Op.Add (zip2 (fun x y -> x *% y) (input "x") (input "y")))

let q6 =
  P.(
    filter_reduce
      ~pred:(fun x -> prim Op.Lt [ x; constf 0.5 ])
      ~f:(fun x -> x *% constf 10.0)
      Op.Add (input "x"))

let test_inputs () =
  Alcotest.(check (list string)) "dedup in order" [ "x"; "y" ]
    (List.map fst (P.inputs dot));
  check_bool "scalar" true (P.is_scalar dot);
  check_bool "collection" false (P.is_scalar saxpy)

let test_eval_map () =
  let x = [| 1.0; 2.0 |] and y = [| 10.0; 20.0 |] in
  Alcotest.(check (array (float 1e-9))) "saxpy" [| 12.0; 24.0 |]
    (P.eval saxpy ~env:[ ("x", x); ("y", y) ])

let test_eval_reduce () =
  let x = [| 1.0; 2.0; 3.0 |] and y = [| 4.0; 5.0; 6.0 |] in
  check_float "dot" 32.0 (P.eval dot ~env:[ ("x", x); ("y", y) ]).(0)

let test_eval_filter_reduce () =
  let x = [| 0.1; 0.9; 0.3 |] in
  check_float "masked sum" 4.0 (P.eval q6 ~env:[ ("x", x) ]).(0)

(* ------------------------- Fusion ---------------------------------- *)

let test_fusion_collapses_maps () =
  (* map f (map g (map h x)) fuses into one body over one input. *)
  let chained =
    P.(map (fun v -> v +% constf 1.0) (map (fun v -> v *% v) (map (fun v -> v -% constf 3.0) (input "x"))))
  in
  match P.fuse chained with
  | P.Fused_map { f; srcs } ->
    check_int "one leaf input" 1 (List.length srcs);
    (* Substitution duplicates the shared subtree (sub appears twice);
       CSE removes the duplicate after lowering. *)
    check_int "four fused ops" 4 (P.fused_ops (P.Fused_map { f; srcs }));
    check_float "semantics" 10.0 (P.eval_elt f [| 6.0 |])
  | P.Fused_reduce _ | P.Fused_outer _ -> Alcotest.fail "expected a map"

let test_fusion_shares_inputs () =
  (* x used twice fuses to a single leaf. *)
  let twice = P.(zip2 (fun a b -> a *% b) (input "x") (map (fun v -> v +% constf 1.0) (input "x"))) in
  match P.fuse twice with
  | P.Fused_map { srcs; _ } -> check_int "single shared leaf" 1 (List.length srcs)
  | P.Fused_reduce _ | P.Fused_outer _ -> Alcotest.fail "expected a map"

let test_fusion_rejects_nested_reduce () =
  let bad = P.(map (fun v -> v +% constf 1.0) (reduce Op.Add (input "x"))) in
  check_bool "raises" true
    (try
       ignore (P.fuse bad);
       false
     with Failure _ -> true)

(* ------------------------- Lowering -------------------------------- *)

let test_lower_map_matches_eval () =
  let n = 512 in
  let d = P.lower ~name:"saxpy" ~n ~tile:64 ~par:4 saxpy in
  Alcotest.(check (list string)) "valid" [] (Dhdl_ir.Analysis.validate d);
  let rng = Rng.create 5 in
  let x = Array.init n (fun _ -> Rng.float_in rng (-2.0) 2.0) in
  let y = Array.init n (fun _ -> Rng.float_in rng (-2.0) 2.0) in
  let env = Interp.run d ~inputs:[ ("x", x); ("y", y) ] in
  Alcotest.(check (array (float 1e-4))) "lowered = reference"
    (P.eval saxpy ~env:[ ("x", x); ("y", y) ])
    (Interp.offchip env "out")

let test_lower_reduce_matches_eval () =
  let n = 256 in
  let d = P.lower ~name:"dot" ~n ~tile:32 ~par:8 dot in
  let rng = Rng.create 6 in
  let x = Array.init n (fun _ -> Rng.float_in rng (-1.0) 1.0) in
  let y = Array.init n (fun _ -> Rng.float_in rng (-1.0) 1.0) in
  let env = Interp.run d ~inputs:[ ("x", x); ("y", y) ] in
  check_float "lowered reduce" (P.eval dot ~env:[ ("x", x); ("y", y) ]).(0)
    (Interp.reg env "out")

let test_lower_filter_reduce () =
  let n = 128 in
  let d = P.lower ~name:"q6" ~n ~tile:64 q6 in
  let rng = Rng.create 7 in
  let x = Array.init n (fun _ -> Rng.float_in rng 0.0 1.0) in
  let env = Interp.run d ~inputs:[ ("x", x) ] in
  check_float "filter-reduce" (P.eval q6 ~env:[ ("x", x) ]).(0) (Interp.reg env "out")

let test_lower_single_pipe () =
  (* Fusion means the lowered design has exactly one compute Pipe. *)
  let d = P.lower ~name:"fused" ~n:256 ~tile:64 saxpy in
  check_int "one pipe" 1 (List.length (Dhdl_ir.Traverse.pipes d))

let test_lower_estimable () =
  let d = P.lower ~name:"est" ~n:65_536 dot in
  let rpt = Dhdl_synth.Toolchain.synthesize d in
  check_bool "synthesizes" true (rpt.Dhdl_synth.Report.alms > 0);
  check_bool "simulates" true ((Dhdl_sim.Perf_sim.simulate d).Dhdl_sim.Perf_sim.cycles > 0.0)

let test_lower_bad_tile () =
  check_bool "tile must divide" true
    (try
       ignore (P.lower ~name:"bad" ~n:100 ~tile:33 dot);
       false
     with Invalid_argument _ -> true)

(* Random pattern generator for the equivalence property. *)
let random_pattern rng =
  let leaf () = P.input (Dhdl_util.Rng.choice rng [| "a"; "b"; "c" |]) in
  let rec grow depth =
    if depth = 0 then leaf ()
    else
      match Dhdl_util.Rng.int rng 3 with
      | 0 -> P.map (fun v -> P.(v +% constf (float_of_int (Dhdl_util.Rng.int rng 5)))) (grow (depth - 1))
      | 1 -> P.zip2 (fun x y -> P.(x *% y)) (grow (depth - 1)) (grow (depth - 1))
      | _ -> P.map (fun v -> P.(prim Op.Max [ v; constf 0.5 ])) (grow (depth - 1))
  in
  let body = grow (1 + Dhdl_util.Rng.int rng 3) in
  if Dhdl_util.Rng.bool rng then P.reduce Op.Add body else body

let prop_lowering_preserves_semantics =
  QCheck.Test.make ~name:"lowered designs match reference evaluation" ~count:25
    QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 11) in
      let pat = random_pattern rng in
      let n = 64 in
      let d = P.lower ~name:"prop" ~n ~tile:16 ~par:2 pat in
      let env_data =
        List.map
          (fun (name, _) -> (name, Array.init n (fun _ -> Rng.float_in rng (-1.0) 1.0)))
          (P.inputs pat)
      in
      let expect = P.eval pat ~env:env_data in
      let env = Interp.run d ~inputs:env_data in
      let got = if P.is_scalar pat then [| Interp.reg env "out" |] else Interp.offchip env "out" in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-3 *. Float.max 1.0 (Float.abs a)) expect got)

(* ------------------------- Outer patterns -------------------------- *)

let outer_prod = P.(outer (fun a b -> a *% b) (input "x") (input "y"))

let correlation_sum =
  (* Full 2-D reduction of a generalized outer product. *)
  P.(
    reduce Op.Add
      (outer
         (fun a b -> prim Op.Abs [ a -% b ])
         (map (fun v -> v *% constf 2.0) (input "x"))
         (input "y")))

let test_outer_eval () =
  let x = [| 1.0; 2.0 |] and y = [| 3.0; 4.0; 5.0 |] in
  Alcotest.(check (array (float 1e-9))) "outer 2x3" [| 3.0; 4.0; 5.0; 6.0; 8.0; 10.0 |]
    (P.eval outer_prod ~env:[ ("x", x); ("y", y) ]);
  check_bool "prints" true (String.length (P.to_string outer_prod) > 10)

let test_outer_fusion () =
  match P.fuse correlation_sum with
  | P.Fused_outer { a_srcs; b_srcs; reduce; _ } ->
    check_int "row inputs" 1 (List.length a_srcs);
    check_int "col inputs" 1 (List.length b_srcs);
    check_bool "reduce op" true (reduce = Some Op.Add)
  | _ -> Alcotest.fail "expected a fused outer"

let test_outer_lowered_map () =
  let n = 64 and m = 48 in
  let d = P.lower ~name:"op" ~n ~m ~tile:16 ~tile_b:12 ~par:4 outer_prod in
  Alcotest.(check (list string)) "valid" [] (Dhdl_ir.Analysis.validate d);
  let rng = Rng.create 8 in
  let x = Array.init n (fun _ -> Rng.float_in rng (-2.0) 2.0) in
  let y = Array.init m (fun _ -> Rng.float_in rng (-2.0) 2.0) in
  let env = Interp.run d ~inputs:[ ("x", x); ("y", y) ] in
  Alcotest.(check (array (float 1e-4))) "lowered outer"
    (P.eval outer_prod ~env:[ ("x", x); ("y", y) ])
    (Interp.offchip env "out")

let test_outer_lowered_reduce () =
  let n = 32 and m = 24 in
  let d = P.lower ~name:"corr" ~n ~m ~tile:8 ~tile_b:6 ~par:2 correlation_sum in
  let rng = Rng.create 9 in
  let x = Array.init n (fun _ -> Rng.float_in rng (-1.0) 1.0) in
  let y = Array.init m (fun _ -> Rng.float_in rng (-1.0) 1.0) in
  let env = Interp.run d ~inputs:[ ("x", x); ("y", y) ] in
  let expect = (P.eval correlation_sum ~env:[ ("x", x); ("y", y) ]).(0) in
  check_bool "2-D reduce matches" true (Float.abs (Interp.reg env "out" -. expect) < 1e-3 *. Float.abs expect)

let test_outer_estimable () =
  let d = P.lower ~name:"bigouter" ~n:38_400 ~m:38_400 ~tile:128 ~tile_b:128 ~par:8 outer_prod in
  check_bool "synthesizes" true ((Dhdl_synth.Toolchain.synthesize d).Dhdl_synth.Report.alms > 0)

(* ------------------------- Transform passes ------------------------ *)

let test_transform_constant_folding () =
  let b = Dhdl_ir.Builder.create "cf" in
  let m = Dhdl_ir.Builder.bram b "m" Dtype.float32 [ 4 ] in
  let top =
    Dhdl_ir.Builder.pipe ~label:"p" ~counters:[ ("i", 0, 4, 1) ] (fun pb ->
        let c = Dhdl_ir.Builder.add pb (Dhdl_ir.Builder.const 2.0) (Dhdl_ir.Builder.const 3.0) in
        Dhdl_ir.Builder.store pb m [ Dhdl_ir.Builder.iter "i" ] c)
  in
  let d = Dhdl_ir.Builder.finish b ~top in
  let d' = Transform.optimize d in
  check_int "folded to just the store" 1 (Transform.body_size d'.Ir.d_top);
  let env = Interp.run d' ~inputs:[] in
  check_float "value preserved" 5.0 (Interp.bram env "m").(0)

let test_transform_cse_loads () =
  (* The pattern frontend duplicates loads per use; CSE merges them. *)
  let pat = P.(zip2 (fun x y -> (x *% y) +% (x *% y)) (input "x") (input "x")) in
  ignore pat;
  let b = Dhdl_ir.Builder.create "cse" in
  let m = Dhdl_ir.Builder.bram b "m" Dtype.float32 [ 8 ] in
  let o = Dhdl_ir.Builder.bram b "o" Dtype.float32 [ 8 ] in
  let top =
    Dhdl_ir.Builder.pipe ~label:"p" ~counters:[ ("i", 0, 8, 1) ] (fun pb ->
        let a = Dhdl_ir.Builder.load pb m [ Dhdl_ir.Builder.iter "i" ] in
        let b' = Dhdl_ir.Builder.load pb m [ Dhdl_ir.Builder.iter "i" ] in
        let p1 = Dhdl_ir.Builder.mul pb a b' in
        let p2 = Dhdl_ir.Builder.mul pb a b' in
        Dhdl_ir.Builder.store pb o [ Dhdl_ir.Builder.iter "i" ] (Dhdl_ir.Builder.add pb p1 p2))
  in
  let d = Dhdl_ir.Builder.finish b ~top in
  check_int "before: 6 statements" 6 (Transform.body_size d.Ir.d_top);
  let d' = Transform.optimize d in
  (* load, mul, add, store *)
  check_int "after: 4 statements" 4 (Transform.body_size d'.Ir.d_top)

let test_transform_no_cse_across_stores () =
  (* Loads of a memory that is stored in the same body must not merge. *)
  let b = Dhdl_ir.Builder.create "nocse" in
  let m = Dhdl_ir.Builder.bram b "m" Dtype.float32 [ 8 ] in
  let top =
    Dhdl_ir.Builder.pipe ~label:"p" ~counters:[ ("k", 0, 2, 1); ("i", 0, 8, 1) ] (fun pb ->
        let a = Dhdl_ir.Builder.load pb m [ Dhdl_ir.Builder.iter "i" ] in
        Dhdl_ir.Builder.store pb m [ Dhdl_ir.Builder.iter "i" ]
          (Dhdl_ir.Builder.add pb a (Dhdl_ir.Builder.const 1.0));
        let c = Dhdl_ir.Builder.load pb m [ Dhdl_ir.Builder.iter "i" ] in
        Dhdl_ir.Builder.store pb m [ Dhdl_ir.Builder.iter "i" ]
          (Dhdl_ir.Builder.add pb c (Dhdl_ir.Builder.const 1.0)))
  in
  let d = Dhdl_ir.Builder.finish b ~top in
  let d' = Transform.optimize d in
  check_int "nothing merged" 6 (Transform.body_size d'.Ir.d_top);
  let env = Interp.run d' ~inputs:[] in
  check_float "rmw semantics preserved" 4.0 (Interp.bram env "m").(0)

let test_transform_dce () =
  let b = Dhdl_ir.Builder.create "dce" in
  let m = Dhdl_ir.Builder.bram b "m" Dtype.float32 [ 4 ] in
  let top =
    Dhdl_ir.Builder.pipe ~label:"p" ~counters:[ ("i", 0, 4, 1) ] (fun pb ->
        let v = Dhdl_ir.Builder.load pb m [ Dhdl_ir.Builder.iter "i" ] in
        (* Dead: computed but never observed. *)
        ignore (Dhdl_ir.Builder.op pb Op.Exp [ v ]);
        Dhdl_ir.Builder.store pb m [ Dhdl_ir.Builder.iter "i" ]
          (Dhdl_ir.Builder.add pb v (Dhdl_ir.Builder.const 1.0)))
  in
  let d = Dhdl_ir.Builder.finish b ~top in
  let d' = Transform.optimize d in
  check_int "dead exp removed" 3 (Transform.body_size d'.Ir.d_top)

let test_transform_keeps_reduce_value () =
  let b = Dhdl_ir.Builder.create "red" in
  let out = Dhdl_ir.Builder.reg b "out" Dtype.float32 in
  let top =
    Dhdl_ir.Builder.reduce_pipe ~label:"p" ~counters:[ ("i", 0, 4, 1) ] ~op:Op.Add ~out (fun pb ->
        Dhdl_ir.Builder.op pb Op.Mul [ Dhdl_ir.Builder.iter "i"; Dhdl_ir.Builder.const 2.0 ])
  in
  let d = Dhdl_ir.Builder.finish b ~top in
  let d' = Transform.optimize d in
  check_int "reduce value kept" 1 (Transform.body_size d'.Ir.d_top);
  let env = Interp.run d' ~inputs:[] in
  check_float "sum 0+2+4+6" 12.0 (Interp.reg env "out")

let prop_transform_preserves_semantics =
  (* Optimizing random lowered pattern designs (plus their reductions)
     never changes interpreter results. Patterns keep the designs small
     enough to interpret quickly. *)
  QCheck.Test.make ~name:"optimize preserves semantics" ~count:30 QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 21) in
      let pat = random_pattern rng in
      let n = 48 in
      let d = P.lower ~name:"tp" ~n ~tile:16 ~par:2 pat in
      let inputs =
        List.map
          (fun (name, _) -> (name, Array.init n (fun _ -> Rng.float_in rng (-1.0) 1.0)))
          (P.inputs pat)
      in
      let d' = Transform.optimize d in
      let read dd =
        let env = Interp.run dd ~inputs in
        if P.is_scalar pat then [| Interp.reg env "out" |] else Interp.offchip env "out"
      in
      let close a b =
        (not (Float.is_finite a) && not (Float.is_finite b))
        || Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.abs a)
      in
      Array.for_all2 close (read d) (read d'))

let test_transform_shrinks_lowered_patterns () =
  (* The frontend's duplicated loads disappear. *)
  let pat = P.(reduce Op.Add (zip2 (fun x y -> (x *% y) +% (x *% x)) (input "x") (input "x"))) in
  let d = P.lower ~name:"dupe" ~n:64 ~tile:16 pat in
  let before = Dhdl_util.Intmath.prod [ Dhdl_ir.Traverse.stmt_count d ] in
  let d' = Transform.optimize d in
  check_bool "smaller" true (Dhdl_ir.Traverse.stmt_count d' < before)

let () =
  Alcotest.run "patterns"
    [
      ( "elt",
        [ Alcotest.test_case "eval and print" `Quick test_elt_eval ] );
      ( "patterns",
        [
          Alcotest.test_case "inputs" `Quick test_inputs;
          Alcotest.test_case "eval map" `Quick test_eval_map;
          Alcotest.test_case "eval reduce" `Quick test_eval_reduce;
          Alcotest.test_case "eval filter-reduce" `Quick test_eval_filter_reduce;
        ] );
      ( "fusion",
        [
          Alcotest.test_case "collapses maps" `Quick test_fusion_collapses_maps;
          Alcotest.test_case "shares inputs" `Quick test_fusion_shares_inputs;
          Alcotest.test_case "rejects nested reduce" `Quick test_fusion_rejects_nested_reduce;
        ] );
      ( "lowering",
        [
          Alcotest.test_case "map matches eval" `Quick test_lower_map_matches_eval;
          Alcotest.test_case "reduce matches eval" `Quick test_lower_reduce_matches_eval;
          Alcotest.test_case "filter-reduce" `Quick test_lower_filter_reduce;
          Alcotest.test_case "single fused pipe" `Quick test_lower_single_pipe;
          Alcotest.test_case "estimable" `Quick test_lower_estimable;
          Alcotest.test_case "bad tile" `Quick test_lower_bad_tile;
          qtest prop_lowering_preserves_semantics;
        ] );
      ( "outer",
        [
          Alcotest.test_case "eval" `Quick test_outer_eval;
          Alcotest.test_case "fusion" `Quick test_outer_fusion;
          Alcotest.test_case "lowered map" `Quick test_outer_lowered_map;
          Alcotest.test_case "lowered reduce" `Quick test_outer_lowered_reduce;
          Alcotest.test_case "estimable" `Quick test_outer_estimable;
        ] );
      ( "transform",
        [
          Alcotest.test_case "constant folding" `Quick test_transform_constant_folding;
          Alcotest.test_case "cse loads" `Quick test_transform_cse_loads;
          Alcotest.test_case "no cse across stores" `Quick test_transform_no_cse_across_stores;
          Alcotest.test_case "dead code" `Quick test_transform_dce;
          Alcotest.test_case "keeps reduce value" `Quick test_transform_keeps_reduce_value;
          Alcotest.test_case "shrinks lowered patterns" `Quick test_transform_shrinks_lowered_patterns;
          qtest prop_transform_preserves_semantics;
        ] );
    ]
