test/test_model.ml: Alcotest Array Dhdl_device Dhdl_ir Dhdl_ml Dhdl_model Dhdl_sim Dhdl_synth Dhdl_util Filename Lazy List Printf String Sys
