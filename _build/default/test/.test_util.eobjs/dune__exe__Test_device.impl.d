test/test_device.ml: Alcotest Dhdl_device Dhdl_ir List Printf String
