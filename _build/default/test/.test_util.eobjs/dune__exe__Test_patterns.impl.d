test/test_patterns.ml: Alcotest Array Dhdl_ir Dhdl_patterns Dhdl_sim Dhdl_synth Dhdl_util Float List QCheck QCheck_alcotest String
