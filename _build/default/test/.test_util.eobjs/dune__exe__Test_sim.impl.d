test/test_sim.ml: Alcotest Array Dhdl_apps Dhdl_cpu Dhdl_ir Dhdl_sim Dhdl_util Float List Printf QCheck QCheck_alcotest String
