test/test_codegen.ml: Alcotest Dhdl_apps Dhdl_codegen Dhdl_ir List String
