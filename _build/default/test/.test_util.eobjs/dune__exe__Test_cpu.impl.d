test/test_cpu.ml: Alcotest Array Dhdl_cpu Dhdl_util Float List QCheck QCheck_alcotest
