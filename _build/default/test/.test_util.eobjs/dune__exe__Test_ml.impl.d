test/test_ml.ml: Alcotest Array Dhdl_ml Dhdl_util Float List
