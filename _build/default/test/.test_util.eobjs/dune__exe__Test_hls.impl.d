test/test_hls.ml: Alcotest Dhdl_hls List String
