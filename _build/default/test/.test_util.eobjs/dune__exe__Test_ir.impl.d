test/test_ir.ml: Alcotest Dhdl_ir List Printf QCheck QCheck_alcotest String
