test/test_core.ml: Alcotest Dhdl_apps Dhdl_core Dhdl_dse Dhdl_model Dhdl_util Filename Lazy List String Sys
