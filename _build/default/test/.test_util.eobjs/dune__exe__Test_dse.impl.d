test/test_dse.ml: Alcotest Dhdl_apps Dhdl_dse Dhdl_model Dhdl_util Lazy List Printf String
