test/test_util.ml: Alcotest Array Dhdl_util Float Gen List QCheck QCheck_alcotest String
