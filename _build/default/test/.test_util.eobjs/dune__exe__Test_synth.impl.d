test/test_synth.ml: Alcotest Dhdl_device Dhdl_ir Dhdl_model Dhdl_synth List
