(* Tests for the device model: resource vectors, M20K geometry and the
   characterized primitive library. *)

module R = Dhdl_device.Resources
module Target = Dhdl_device.Target
module Primitives = Dhdl_device.Primitives
module Op = Dhdl_ir.Op
module Dtype = Dhdl_ir.Dtype

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------- Resources ------------------------------- *)

let test_resources_algebra () =
  let a = R.make ~packable:10 ~unpackable:5 ~regs:20 ~dsps:1 ~brams:2 () in
  let b = R.make ~packable:1 ~unpackable:2 ~regs:3 ~dsps:4 ~brams:5 () in
  let s = R.add a b in
  check_int "packable" 11 s.R.lut_packable;
  check_int "unpackable" 7 s.R.lut_unpackable;
  check_int "regs" 23 s.R.regs;
  check_int "dsps" 5 s.R.dsps;
  check_int "brams" 7 s.R.brams;
  check_int "luts" 18 (R.luts s);
  check_bool "zero identity" true (R.equal a (R.add a R.zero));
  check_bool "sum" true (R.equal s (R.sum [ a; b ]));
  check_bool "scale" true (R.equal (R.add a a) (R.scale 2 a))

let test_resources_string () =
  let s = R.to_string (R.make ~packable:1 ~unpackable:2 ~regs:3 ~dsps:4 ~brams:5 ()) in
  check_bool "non-empty" true (String.length s > 10)

(* ------------------------- Target ---------------------------------- *)

let test_device_constants () =
  let d = Target.stratix_v in
  check_int "alms" 262_400 d.Target.alms;
  check_int "dsps" 1_963 d.Target.dsps;
  check_int "brams" 2_567 d.Target.brams;
  check_bool "board clock" true (Target.max4_maia.Target.fabric_mhz = 150.0)

let test_smaller_device () =
  let d5 = Target.stratix_v_d5 and d8 = Target.stratix_v in
  check_bool "strictly smaller" true
    (d5.Target.alms < d8.Target.alms && d5.Target.dsps < d8.Target.dsps
    && d5.Target.brams < d8.Target.brams);
  check_bool "same block geometry" true (d5.Target.bram_bits = d8.Target.bram_bits)

let test_bytes_per_cycle () =
  (* 37.5 GB/s at 150 MHz = 250 bytes per fabric cycle. *)
  Alcotest.(check (float 1e-6)) "bytes/cycle" 250.0 (Target.bytes_per_cycle Target.max4_maia)

let test_bram_geometry () =
  let d = Target.stratix_v in
  check_int "one block" 1 (Target.bram_blocks_for d ~width_bits:32 ~depth:512);
  check_int "deep doubles" 2 (Target.bram_blocks_for d ~width_bits:32 ~depth:1024);
  check_int "wide doubles" 2 (Target.bram_blocks_for d ~width_bits:64 ~depth:512);
  (* Narrow memories reconfigure deeper: 1 bit x 16K fits one block. *)
  check_int "narrow deep" 1 (Target.bram_blocks_for d ~width_bits:1 ~depth:16_384);
  check_int "narrow deep 20b" 1 (Target.bram_blocks_for d ~width_bits:20 ~depth:1_024);
  check_int "tiny" 1 (Target.bram_blocks_for d ~width_bits:8 ~depth:4)

(* ------------------------- Primitives ------------------------------ *)

let types = [ Dtype.float32; Dtype.float64; Dtype.int32; Dtype.int16; Dtype.bool_t ]

let test_primitives_total () =
  (* Every (op, type) combination characterizes to positive area and
     latency. *)
  List.iter
    (fun op ->
      List.iter
        (fun ty ->
          let area = Primitives.area op ty in
          check_bool
            (Printf.sprintf "%s %s area" (Op.name op) (Dtype.to_string ty))
            true
            (R.luts area > 0 || area.R.dsps > 0);
          check_bool
            (Printf.sprintf "%s %s latency" (Op.name op) (Dtype.to_string ty))
            true
            (Primitives.latency op ty >= 1))
        types)
    Op.all

let test_float_mul_uses_dsp () =
  check_bool "fmul dsp" true ((Primitives.area Op.Mul Dtype.float32).R.dsps >= 1);
  check_bool "fadd no dsp" true ((Primitives.area Op.Add Dtype.float32).R.dsps = 0)

let test_complex_ops_cost_more () =
  let luts op = R.luts (Primitives.area op Dtype.float32) in
  check_bool "div > add" true (luts Op.Div > luts Op.Add);
  check_bool "log > mul" true (luts Op.Log > luts Op.Mul);
  check_bool "div latency > add" true
    (Primitives.latency Op.Div Dtype.float32 > Primitives.latency Op.Add Dtype.float32)

let test_multi_cycle_classification () =
  check_bool "sqrt multi" true (Op.is_multi_cycle Op.Sqrt);
  check_bool "add single class" false (Op.is_multi_cycle Op.Add)

let test_fixed_width_scaling () =
  let luts b =
    R.luts (Primitives.area Op.Add (Dtype.fixed ~int_bits:b ~frac_bits:0 ()))
  in
  check_bool "wider fixed adder costs more" true (luts 64 > luts 16)

let test_fixed_mul_dsps () =
  check_int "16-bit mul: one slice" 1
    (Primitives.area Op.Mul (Dtype.fixed ~int_bits:16 ~frac_bits:0 ())).R.dsps;
  check_int "54-bit mul: four slices" 4
    (Primitives.area Op.Mul (Dtype.fixed ~int_bits:54 ~frac_bits:0 ())).R.dsps

let test_fifo_area () =
  let dev = Target.stratix_v in
  let small = Primitives.fifo_area ~width_bits:32 ~depth:16 dev in
  check_int "small fifo in registers" 0 small.R.brams;
  let big = Primitives.fifo_area ~width_bits:32 ~depth:1024 dev in
  check_bool "deep fifo uses brams" true (big.R.brams >= 2)

let test_counter_area_monotone () =
  let l b = R.luts (Primitives.counter_area ~bits:b) in
  check_bool "monotone" true (l 32 > l 8)

let test_load_store () =
  check_bool "f32 load area" true (R.luts (Primitives.load_store_area Dtype.float32) > 0);
  check_int "latency" 1 Primitives.load_store_latency

let () =
  Alcotest.run "device"
    [
      ( "resources",
        [
          Alcotest.test_case "algebra" `Quick test_resources_algebra;
          Alcotest.test_case "to_string" `Quick test_resources_string;
        ] );
      ( "target",
        [
          Alcotest.test_case "constants" `Quick test_device_constants;
          Alcotest.test_case "smaller device" `Quick test_smaller_device;
          Alcotest.test_case "bytes per cycle" `Quick test_bytes_per_cycle;
          Alcotest.test_case "bram geometry" `Quick test_bram_geometry;
        ] );
      ( "primitives",
        [
          Alcotest.test_case "total coverage" `Quick test_primitives_total;
          Alcotest.test_case "fmul uses dsp" `Quick test_float_mul_uses_dsp;
          Alcotest.test_case "complex ops cost more" `Quick test_complex_ops_cost_more;
          Alcotest.test_case "multi-cycle class" `Quick test_multi_cycle_classification;
          Alcotest.test_case "fixed width scaling" `Quick test_fixed_width_scaling;
          Alcotest.test_case "fixed mul dsps" `Quick test_fixed_mul_dsps;
          Alcotest.test_case "fifo area" `Quick test_fifo_area;
          Alcotest.test_case "counter monotone" `Quick test_counter_area_monotone;
          Alcotest.test_case "load/store" `Quick test_load_store;
        ] );
    ]
