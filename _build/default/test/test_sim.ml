(* Tests for the functional interpreter and the cycle-level performance
   simulator. *)

module Ir = Dhdl_ir.Ir
module Op = Dhdl_ir.Op
module Dtype = Dhdl_ir.Dtype
module B = Dhdl_ir.Builder
module Interp = Dhdl_sim.Interp
module Perf_sim = Dhdl_sim.Perf_sim
module Rng = Dhdl_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------- Interpreter ----------------------------- *)

let test_interp_map () =
  let b = B.create "map" in
  let x = B.offchip b "x" Dtype.float32 [ 8 ] in
  let y = B.offchip b "y" Dtype.float32 [ 8 ] in
  let xt = B.bram b "xT" Dtype.float32 [ 8 ] in
  let yt = B.bram b "yT" Dtype.float32 [ 8 ] in
  let compute =
    B.pipe ~label:"p" ~counters:[ ("i", 0, 8, 1) ] (fun pb ->
        let v = B.load pb xt [ B.iter "i" ] in
        B.store pb yt [ B.iter "i" ] (B.add pb (B.mul pb v (B.const 3.0)) (B.const 1.0)))
  in
  let top =
    B.sequential_block ~label:"s"
      [
        B.tile_load ~src:x ~dst:xt ~offsets:[ B.const 0.0 ] ();
        compute;
        B.tile_store ~dst:y ~src:yt ~offsets:[ B.const 0.0 ] ();
      ]
  in
  let d = B.finish b ~top in
  let env = Interp.run d ~inputs:[ ("x", Array.init 8 float_of_int) ] in
  let y = Interp.offchip env "y" in
  Array.iteri (fun i v -> check_float "map" ((3.0 *. float_of_int i) +. 1.0) v) y

let test_interp_strided_counter () =
  let b = B.create "stride" in
  let m = B.bram b "m" Dtype.float32 [ 10 ] in
  let top =
    B.pipe ~label:"p" ~counters:[ ("i", 0, 10, 3) ] (fun pb ->
        B.store pb m [ B.iter "i" ] (B.const 1.0))
  in
  let d = B.finish b ~top in
  let env = Interp.run d ~inputs:[] in
  let m = Interp.bram env "m" in
  Array.iteri
    (fun i v -> check_float (Printf.sprintf "idx %d" i) (if i mod 3 = 0 then 1.0 else 0.0) v)
    m

let test_interp_scalar_reduce_resets () =
  (* Each Pipe execution re-reduces from the identity; the register holds
     the last execution's total, not an accumulation. *)
  let b = B.create "reduce" in
  let out = B.reg b "out" Dtype.float32 in
  let inner =
    B.reduce_pipe ~label:"r" ~counters:[ ("i", 0, 4, 1) ] ~op:Op.Add ~out (fun pb ->
        ignore pb;
        B.const 1.0)
  in
  let top = B.metapipe ~label:"m" ~counters:[ ("t", 0, 3, 1) ] ~pipelined:false [ inner ] in
  let d = B.finish b ~top in
  let env = Interp.run d ~inputs:[] in
  check_float "last execution total" 4.0 (Interp.reg env "out")

let test_interp_mem_reduce_fresh_per_execution () =
  (* Regression for the gemm accumulator: a loop-level reduction must start
     fresh on the loop's first iteration, even when the loop runs several
     times (enclosing loop). *)
  let b = B.create "memred" in
  let src = B.bram b "src" Dtype.float32 [ 2 ] in
  let dst = B.bram b "dst" Dtype.float32 [ 2 ] in
  let fill =
    B.pipe ~label:"fill" ~counters:[ ("i", 0, 2, 1) ] (fun pb ->
        B.store pb src [ B.iter "i" ] (B.const 1.0))
  in
  let inner = B.metapipe ~label:"in" ~counters:[ ("k", 0, 5, 1) ] ~reduce:(Op.Add, src, dst) [ fill ] in
  let top = B.metapipe ~label:"out" ~counters:[ ("t", 0, 3, 1) ] ~pipelined:false [ inner ] in
  let d = B.finish b ~top in
  let env = Interp.run d ~inputs:[] in
  (* Each execution of [inner] sums 5 ones; runs 3 times but must NOT
     accumulate to 15. *)
  check_float "fresh accumulator" 5.0 (Interp.bram env "dst").(0)

let test_interp_reduce_min () =
  let b = B.create "minred" in
  let xt = B.bram b "xT" Dtype.float32 [ 4 ] in
  let out = B.reg b "out" Dtype.float32 in
  let fill =
    B.pipe ~label:"fill" ~counters:[ ("i", 0, 4, 1) ] (fun pb ->
        B.store pb xt [ B.iter "i" ]
          (B.sub pb (B.const 10.0) (B.op pb Op.Mul [ B.iter "i"; B.const 2.0 ])))
  in
  let reduce =
    B.reduce_pipe ~label:"r" ~counters:[ ("i", 0, 4, 1) ] ~op:Op.Min ~out (fun pb ->
        B.load pb xt [ B.iter "i" ])
  in
  let d = B.finish b ~top:(B.sequential_block ~label:"s" [ fill; reduce ]) in
  let env = Interp.run d ~inputs:[] in
  check_float "min" 4.0 (Interp.reg env "out")

let test_interp_out_of_bounds () =
  let b = B.create "oob" in
  let m = B.bram b "m" Dtype.float32 [ 4 ] in
  let top =
    B.pipe ~label:"p" ~counters:[ ("i", 0, 8, 1) ] (fun pb ->
        B.store pb m [ B.iter "i" ] (B.const 1.0))
  in
  let d = B.finish b ~top in
  check_bool "raises" true
    (try
       ignore (Interp.run d ~inputs:[]);
       false
     with Failure msg -> String.length msg > 0)

let test_interp_wrong_input_size () =
  let b = B.create "badin" in
  let x = B.offchip b "x" Dtype.float32 [ 8 ] in
  let xt = B.bram b "xT" Dtype.float32 [ 8 ] in
  let top = B.sequential_block ~label:"s" [ B.tile_load ~src:x ~dst:xt ~offsets:[ B.const 0.0 ] () ] in
  let d = B.finish b ~top in
  check_bool "raises" true
    (try
       ignore (Interp.run d ~inputs:[ ("x", [| 1.0 |]) ]);
       false
     with Failure _ -> true)

let test_interp_2d_tiles () =
  (* Round-trip a 2-D tile through on-chip memory with offsets. *)
  let b = B.create "t2d" in
  let x = B.offchip b "x" Dtype.float32 [ 4; 6 ] in
  let y = B.offchip b "y" Dtype.float32 [ 4; 6 ] in
  let t = B.bram b "t" Dtype.float32 [ 2; 3 ] in
  let top =
    B.metapipe ~label:"m"
      ~counters:[ ("r", 0, 4, 2); ("c", 0, 6, 3) ]
      ~pipelined:false
      [
        B.tile_load ~src:x ~dst:t ~offsets:[ B.iter "r"; B.iter "c" ] ();
        B.tile_store ~dst:y ~src:t ~offsets:[ B.iter "r"; B.iter "c" ] ();
      ]
  in
  let d = B.finish b ~top in
  let data = Array.init 24 float_of_int in
  let env = Interp.run d ~inputs:[ ("x", data) ] in
  Alcotest.(check (array (float 0.0))) "identity copy" data (Interp.offchip env "y")

let test_interp_parallel_stages () =
  let b = B.create "par" in
  let m1 = B.bram b "m1" Dtype.float32 [ 2 ] in
  let m2 = B.bram b "m2" Dtype.float32 [ 2 ] in
  let p1 =
    B.pipe ~label:"p1" ~counters:[ ("i", 0, 2, 1) ] (fun pb -> B.store pb m1 [ B.iter "i" ] (B.const 1.0))
  in
  let p2 =
    B.pipe ~label:"p2" ~counters:[ ("i", 0, 2, 1) ] (fun pb -> B.store pb m2 [ B.iter "i" ] (B.const 2.0))
  in
  let d = B.finish b ~top:(B.parallel ~label:"f" [ p1; p2 ]) in
  let env = Interp.run d ~inputs:[] in
  check_float "fork 1" 1.0 (Interp.bram env "m1").(0);
  check_float "fork 2" 2.0 (Interp.bram env "m2").(0)

let prop_interp_par_invariant =
  (* Parallelization factors never change results (they only change the
     schedule) — checked on the dotproduct benchmark. *)
  QCheck.Test.make ~name:"results independent of par" ~count:20
    QCheck.(pair (int_range 0 1000) (int_range 0 3))
    (fun (seed, pidx) ->
      let app = Dhdl_apps.Registry.find "dotproduct" in
      let sizes = [ ("n", 256) ] in
      let par = List.nth [ 1; 2; 4; 8 ] pidx in
      let d =
        app.Dhdl_apps.App.generate ~sizes ~params:[ ("tile", 64); ("par", par); ("meta", 1) ]
      in
      let rng = Rng.create seed in
      let x = Array.init 256 (fun _ -> Rng.float_in rng (-1.0) 1.0) in
      let y = Array.init 256 (fun _ -> Rng.float_in rng (-1.0) 1.0) in
      let env = Interp.run d ~inputs:[ ("x", x); ("y", y) ] in
      Float.abs (Interp.reg env "result" -. Dhdl_cpu.Kernels.dotproduct x y) < 1e-3)

let test_interp_priority_queue () =
  let b = B.create "pq" in
  let q = B.queue b "q" Dtype.float32 ~depth:3 in
  let outt = B.bram b "outT" Dtype.float32 [ 3 ] in
  let fill =
    B.pipe ~label:"fill" ~counters:[ ("i", 0, 6, 1) ] (fun pb ->
        (* Push 5, 4, 3, 2, 1, 0: the bounded min-queue keeps {0,1,2}. *)
        B.push pb q (B.sub pb (B.const 5.0) (B.op pb ~ty:Dtype.float32 Op.Mux [ B.const 0.0; B.const 0.0; B.iter "i" ])))
  in
  let drain =
    B.pipe ~label:"drain" ~counters:[ ("j", 0, 3, 1) ] (fun pb ->
        B.store pb outt [ B.iter "j" ] (B.pop pb q))
  in
  let d = B.finish b ~top:(B.sequential_block ~label:"s" [ fill; drain ]) in
  let env = Interp.run d ~inputs:[] in
  Alcotest.(check (array (float 1e-9))) "three smallest, sorted" [| 0.0; 1.0; 2.0 |]
    (Interp.bram env "outT")

let test_interp_pop_empty () =
  let b = B.create "pqe" in
  let q = B.queue b "q" Dtype.float32 ~depth:2 in
  let r = B.reg b "r" Dtype.float32 in
  let d =
    B.finish b
      ~top:(B.pipe ~label:"p" ~counters:[] (fun pb -> B.write_reg pb r (B.pop pb q)))
  in
  let env = Interp.run d ~inputs:[] in
  check_bool "empty pop is +inf" true (Interp.reg env "r" = infinity)

(* ------------------------- Performance simulator ------------------- *)

let stream_design ?(par = 1) ?(pipelined = true) ?(tile = 256) ?(n = 4096) () =
  let b = B.create (Printf.sprintf "stream_%d_%b_%d" par pipelined tile) in
  let x = B.offchip b "x" Dtype.float32 [ n ] in
  let xt = B.bram b "xT" Dtype.float32 [ tile ] in
  let out = B.reg b "out" Dtype.float32 in
  let partial = B.reg b "partial" Dtype.float32 in
  let compute =
    B.reduce_pipe ~label:"r" ~counters:[ ("i", 0, tile, 1) ] ~par ~op:Op.Add ~out:partial
      (fun pb -> B.load pb xt [ B.iter "i" ])
  in
  let top =
    B.metapipe ~label:"m" ~counters:[ ("t", 0, n, tile) ] ~pipelined ~reduce:(Op.Add, partial, out)
      [ B.tile_load ~src:x ~dst:xt ~offsets:[ B.iter "t" ] ~par (); compute ]
  in
  B.finish b ~top

let test_sim_deterministic () =
  let d = stream_design () in
  let a = Perf_sim.simulate d and b = Perf_sim.simulate d in
  check_float "same cycles" a.Perf_sim.cycles b.Perf_sim.cycles

let test_sim_par_speeds_up () =
  let slow = (Perf_sim.simulate (stream_design ~par:1 ())).Perf_sim.cycles in
  let fast = (Perf_sim.simulate (stream_design ~par:8 ())).Perf_sim.cycles in
  check_bool "par helps" true (fast < slow)

let test_sim_metapipe_beats_sequential () =
  let piped = (Perf_sim.simulate (stream_design ~pipelined:true ())).Perf_sim.cycles in
  let seq = (Perf_sim.simulate (stream_design ~pipelined:false ())).Perf_sim.cycles in
  check_bool "overlap wins" true (piped < seq)

let test_sim_dram_accounting () =
  let d = stream_design ~n:4096 () in
  let r = Perf_sim.simulate d in
  check_float "bytes = n * 4" (4096.0 *. 4.0) r.Perf_sim.dram_bytes

let test_sim_seconds () =
  let d = stream_design () in
  let r = Perf_sim.simulate d in
  Alcotest.(check (float 1e-12)) "150 MHz conversion" (r.Perf_sim.cycles /. 150.0e6) r.Perf_sim.seconds

let test_ii_feedforward () =
  let d =
    stream_design ~par:1 ()
  in
  let pipe = List.hd (Dhdl_ir.Traverse.pipes d) in
  check_int "feed-forward II" 1 (Perf_sim.initiation_interval pipe)

let test_ii_rmw () =
  (* Accumulating into a fixed address (no innermost iterator in the
     address) serializes on the adder latency. *)
  let b = B.create "rmw" in
  let m = B.bram b "m" Dtype.float32 [ 4 ] in
  let top =
    B.pipe ~label:"p" ~counters:[ ("i", 0, 64, 1) ] (fun pb ->
        let v = B.load pb m [ B.const 0.0 ] in
        B.store pb m [ B.const 0.0 ] (B.add pb v (B.const 1.0)))
  in
  let d = B.finish b ~top in
  let pipe = List.hd (Dhdl_ir.Traverse.pipes d) in
  check_bool "long II" true (Perf_sim.initiation_interval pipe > 5)

let test_ii_rotating () =
  (* Same read-modify-write but the innermost iterator rotates the address:
     II stays 1 (gemm's cAcc update). *)
  let b = B.create "rot" in
  let m = B.bram b "m" Dtype.float32 [ 64 ] in
  let top =
    B.pipe ~label:"p" ~counters:[ ("k", 0, 4, 1); ("i", 0, 64, 1) ] (fun pb ->
        let v = B.load pb m [ B.iter "i" ] in
        B.store pb m [ B.iter "i" ] (B.add pb v (B.const 1.0)))
  in
  let d = B.finish b ~top in
  let pipe = List.hd (Dhdl_ir.Traverse.pipes d) in
  check_int "rotating II" 1 (Perf_sim.initiation_interval pipe)

let test_sim_bigger_data_costs_more () =
  let small = (Perf_sim.simulate (stream_design ~n:4096 ())).Perf_sim.cycles in
  let large = (Perf_sim.simulate (stream_design ~n:16384 ())).Perf_sim.cycles in
  check_bool "4x data ~4x cycles" true (large > 3.0 *. small && large < 5.0 *. small)

let test_interp_queue_api () =
  let b = B.create "qapi" in
  let q = B.queue b "q" Dtype.float32 ~depth:4 in
  let d =
    B.finish b
      ~top:(B.pipe ~label:"p" ~counters:[ ("i", 0, 3, 1) ] (fun pb ->
                B.push pb q (B.op pb Op.Neg [ B.iter "i" ])))
  in
  let env = Interp.run d ~inputs:[] in
  Alcotest.(check (list (float 1e-9))) "sorted remaining contents" [ -2.0; -1.0; 0.0 ]
    (Interp.queue env "q")

let test_breakdown () =
  let d = stream_design ~par:1 ~pipelined:true () in
  let rows = Perf_sim.breakdown d in
  check_bool "has rows" true (List.length rows >= 3);
  List.iter (fun (_, own, share) ->
      check_bool "own positive" true (own > 0.0);
      check_bool "share in range" true (share >= 0.0 && share <= 100.001)) rows;
  (* The dominant stage of the metapipe carries (close to) full share. *)
  let _, _, top_share = List.hd rows in
  check_bool "root is total" true (top_share > 99.0);
  check_bool "a stage dominates" true
    (List.exists (fun (l, _, s) -> l <> "m" && s > 50.0) rows)

let test_ctrl_cycles_subtree () =
  let d = stream_design () in
  let pipe = List.hd (Dhdl_ir.Traverse.pipes d) in
  let c = Perf_sim.ctrl_cycles ~design:d pipe in
  check_bool "pipe subtree cheaper than design" true
    (c > 0.0 && c < (Perf_sim.simulate d).Perf_sim.cycles)

let () =
  Alcotest.run "sim"
    [
      ( "interp",
        [
          Alcotest.test_case "elementwise map" `Quick test_interp_map;
          Alcotest.test_case "strided counter" `Quick test_interp_strided_counter;
          Alcotest.test_case "scalar reduce resets" `Quick test_interp_scalar_reduce_resets;
          Alcotest.test_case "mem reduce fresh" `Quick test_interp_mem_reduce_fresh_per_execution;
          Alcotest.test_case "min reduction" `Quick test_interp_reduce_min;
          Alcotest.test_case "out of bounds" `Quick test_interp_out_of_bounds;
          Alcotest.test_case "wrong input size" `Quick test_interp_wrong_input_size;
          Alcotest.test_case "2d tiles" `Quick test_interp_2d_tiles;
          Alcotest.test_case "parallel stages" `Quick test_interp_parallel_stages;
          Alcotest.test_case "priority queue" `Quick test_interp_priority_queue;
          Alcotest.test_case "pop empty" `Quick test_interp_pop_empty;
          qtest prop_interp_par_invariant;
        ] );
      ( "perf",
        [
          Alcotest.test_case "deterministic" `Quick test_sim_deterministic;
          Alcotest.test_case "par speeds up" `Quick test_sim_par_speeds_up;
          Alcotest.test_case "metapipe beats sequential" `Quick test_sim_metapipe_beats_sequential;
          Alcotest.test_case "dram accounting" `Quick test_sim_dram_accounting;
          Alcotest.test_case "seconds conversion" `Quick test_sim_seconds;
          Alcotest.test_case "II feed-forward" `Quick test_ii_feedforward;
          Alcotest.test_case "II read-modify-write" `Quick test_ii_rmw;
          Alcotest.test_case "II rotating address" `Quick test_ii_rotating;
          Alcotest.test_case "data scaling" `Quick test_sim_bigger_data_costs_more;
          Alcotest.test_case "subtree cycles" `Quick test_ctrl_cycles_subtree;
          Alcotest.test_case "breakdown" `Quick test_breakdown;
          Alcotest.test_case "queue api" `Quick test_interp_queue_api;
        ] );
    ]
