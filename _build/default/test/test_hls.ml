(* Tests for the simulated high-level synthesis baseline: the C-like loop
   IR, pragma handling, unrolling, dependence analysis and scheduling. *)

module Cir = Dhdl_hls.Cir
module Scheduler = Dhdl_hls.Scheduler
module Gda_c = Dhdl_hls.Gda_c

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ------------------------- Cir ------------------------------------- *)

let test_cir_listing () =
  let f = Gda_c.build ~rows:100 ~cols:8 Gda_c.default in
  let s = Cir.to_string f in
  check_bool "function header" true (contains ~needle:"void gda" s);
  check_bool "pipeline pragma" true (contains ~needle:"#pragma HLS PIPELINE II=1" s);
  check_bool "loop bound" true (contains ~needle:"i < 100" s);
  check_bool "accumulation" true (contains ~needle:"sigma[j1][j2] +=" s);
  check_bool "ternary" true (contains ~needle:"?" s)

let test_cir_unroll_pragma () =
  let f = Gda_c.build ~cols:8 { Gda_c.default with unroll_l122 = 4 } in
  check_bool "unroll pragma" true (contains ~needle:"#pragma HLS UNROLL factor=4" (Cir.to_string f))

let test_loop_count () =
  let f = Gda_c.build ~cols:8 Gda_c.default in
  check_int "four loops" 4 (Cir.loop_count f)

(* ------------------------- Design points --------------------------- *)

let test_design_points_counts () =
  let restricted = Gda_c.design_points ~restricted:true in
  let full = Gda_c.design_points ~restricted:false in
  check_int "restricted: 5*5*2*2*2" 200 (List.length restricted);
  check_int "full doubles" 400 (List.length full);
  check_bool "restricted never pipelines L1" true
    (List.for_all (fun d -> not d.Gda_c.pipeline_l1) restricted);
  check_int "full space has 200 outer-pipelined points" 200
    (List.length (List.filter (fun d -> d.Gda_c.pipeline_l1) full))

(* ------------------------- Scheduler ------------------------------- *)

let small_kernel d = Gda_c.build ~rows:1000 ~cols:8 d

let test_estimate_basic () =
  let r = Scheduler.estimate (small_kernel Gda_c.default) in
  check_bool "latency positive" true (r.Scheduler.latency_cycles > 0.0);
  check_bool "nodes scheduled" true (r.Scheduler.nodes_scheduled > 0);
  check_bool "regions" true (r.Scheduler.regions > 0);
  check_bool "timed" true (r.Scheduler.elapsed_seconds >= 0.0)

let test_estimate_latency_deterministic () =
  let a = Scheduler.estimate (small_kernel Gda_c.default) in
  let b = Scheduler.estimate (small_kernel Gda_c.default) in
  Alcotest.(check (float 0.0)) "same latency" a.Scheduler.latency_cycles b.Scheduler.latency_cycles

let test_unroll_grows_graph () =
  let u1 = Scheduler.estimate (small_kernel { Gda_c.default with unroll_l122 = 1; pipeline_l122 = false }) in
  let u8 = Scheduler.estimate (small_kernel { Gda_c.default with unroll_l122 = 8; pipeline_l122 = false }) in
  check_bool "more nodes" true (u8.Scheduler.nodes_scheduled > u1.Scheduler.nodes_scheduled);
  check_bool "quadratic dependence work" true
    (u8.Scheduler.dependence_checks > 8 * max 1 u1.Scheduler.dependence_checks)

let test_pipelining_reduces_latency () =
  let off =
    Scheduler.estimate
      (small_kernel { Gda_c.default with pipeline_l11 = false; pipeline_l122 = false })
  in
  let on = Scheduler.estimate (small_kernel Gda_c.default) in
  check_bool "pipelined latency lower" true
    (on.Scheduler.latency_cycles < off.Scheduler.latency_cycles)

let test_outer_pipeline_explodes_work () =
  (* The Table IV mechanism: pipelining L1 fully unrolls everything below,
     and estimation cost explodes with it. *)
  let base = Scheduler.estimate (small_kernel Gda_c.default) in
  let full = Scheduler.estimate (small_kernel { Gda_c.default with pipeline_l1 = true }) in
  check_bool "orders of magnitude more nodes" true
    (full.Scheduler.nodes_scheduled > 20 * base.Scheduler.nodes_scheduled);
  check_bool "wall time grows" true
    (full.Scheduler.elapsed_seconds > base.Scheduler.elapsed_seconds)

let test_accum_recurrence_ii () =
  (* A pipelined accumulation onto a scalar location cannot reach II=1;
     its latency reflects the recurrence-bound II. *)
  let open Cir in
  let scalar_acc =
    { fn_name = "acc";
      fn_body =
        [ for_ ~pipeline:true "i" 1000
            [ Accum { arr = "s"; idx = [ Const 0.0 ]; rhs = Load ("x", [ Var "i" ]) } ] ] }
  in
  let streaming =
    { fn_name = "str";
      fn_body =
        [ for_ ~pipeline:true "i" 1000
            [ Assign { arr = "y"; idx = [ Var "i" ]; rhs = Load ("x", [ Var "i" ]) } ] ] }
  in
  let a = Scheduler.estimate scalar_acc in
  let s = Scheduler.estimate streaming in
  check_bool "recurrence serializes" true (a.Scheduler.latency_cycles > 5.0 *. s.Scheduler.latency_cycles)

let test_non_pipelined_loop_multiplies () =
  let open Cir in
  let mk extent =
    { fn_name = "loop";
      fn_body =
        [ for_ "i" extent [ Assign { arr = "y"; idx = [ Var "i" ]; rhs = Const 1.0 } ] ] }
  in
  let l100 = (Scheduler.estimate (mk 100)).Scheduler.latency_cycles in
  let l400 = (Scheduler.estimate (mk 400)).Scheduler.latency_cycles in
  check_bool "4x extent, ~4x latency" true (l400 > 3.5 *. l100 && l400 < 4.5 *. l100)

let test_latency_scales_with_rows () =
  let l rows =
    (Scheduler.estimate (Gda_c.build ~rows ~cols:8 Gda_c.default)).Scheduler.latency_cycles
  in
  let l1 = l 1000 and l4 = l 4000 in
  check_bool "4x rows ~4x latency" true (l4 > 3.5 *. l1 && l4 < 4.5 *. l1)

let test_ternary_scheduled () =
  let open Cir in
  let f =
    { fn_name = "tern";
      fn_body =
        [ for_ ~pipeline:true "i" 100
            [ Assign
                { arr = "y"; idx = [ Var "i" ];
                  rhs = Ternary (Bin (Gt, Load ("x", [ Var "i" ]), Const 0.0),
                                 Load ("a", [ Var "i" ]), Load ("b", [ Var "i" ])) } ] ] }
  in
  let r = Scheduler.estimate f in
  (* loads x a b + compare + select + store = 6 nodes *)
  check_int "six nodes" 6 r.Scheduler.nodes_scheduled

let test_unroll_reduces_trips () =
  let open Cir in
  let mk unroll =
    { fn_name = "u";
      fn_body = [ for_ ~unroll "i" 256 [ Assign { arr = "y"; idx = [ Var "i" ]; rhs = Const 1.0 } ] ] }
  in
  let l1 = (Scheduler.estimate (mk 1)).Scheduler.latency_cycles in
  let l8 = (Scheduler.estimate (mk 8)).Scheduler.latency_cycles in
  check_bool "unrolling shortens the loop" true (l8 < l1)

let () =
  Alcotest.run "hls"
    [
      ( "cir",
        [
          Alcotest.test_case "listing" `Quick test_cir_listing;
          Alcotest.test_case "unroll pragma" `Quick test_cir_unroll_pragma;
          Alcotest.test_case "loop count" `Quick test_loop_count;
        ] );
      ( "design_points", [ Alcotest.test_case "sweep counts" `Quick test_design_points_counts ] );
      ( "scheduler",
        [
          Alcotest.test_case "basic estimate" `Quick test_estimate_basic;
          Alcotest.test_case "deterministic latency" `Quick test_estimate_latency_deterministic;
          Alcotest.test_case "unroll grows graph" `Quick test_unroll_grows_graph;
          Alcotest.test_case "pipelining helps" `Quick test_pipelining_reduces_latency;
          Alcotest.test_case "outer pipeline explodes" `Quick test_outer_pipeline_explodes_work;
          Alcotest.test_case "accumulation recurrence" `Quick test_accum_recurrence_ii;
          Alcotest.test_case "loop multiplies" `Quick test_non_pipelined_loop_multiplies;
          Alcotest.test_case "latency scales with rows" `Quick test_latency_scales_with_rows;
          Alcotest.test_case "ternary scheduled" `Quick test_ternary_scheduled;
          Alcotest.test_case "unroll reduces trips" `Quick test_unroll_reduces_trips;
        ] );
    ]
