(* Tests for the MaxJ hardware generator: structural checks on the emitted
   kernel and manager sources. *)

module Ir = Dhdl_ir.Ir
module Op = Dhdl_ir.Op
module Dtype = Dhdl_ir.Dtype
module B = Dhdl_ir.Builder
module Maxj = Dhdl_codegen.Maxj
module App = Dhdl_apps.App

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let count_occurrences ~needle haystack =
  let nl = String.length needle in
  let rec go i acc =
    if i + nl > String.length haystack then acc
    else if String.sub haystack i nl = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let sample_design () =
  let app = Dhdl_apps.Registry.find "dotproduct" in
  let sizes = [ ("n", 4096) ] in
  app.App.generate ~sizes ~params:[ ("tile", 256); ("par", 4); ("meta", 1) ]

let test_class_name () =
  Alcotest.(check string) "sanitized" "DotproductKernel" (Maxj.kernel_class_name (sample_design ()));
  let b = B.create "weird-name.2" in
  let top = B.pipe ~label:"p" ~counters:[ ("i", 0, 2, 1) ] (fun _ -> ()) in
  Alcotest.(check string) "specials replaced" "Weird_name_2Kernel"
    (Maxj.kernel_class_name (B.finish b ~top))

let test_kernel_structure () =
  let d = sample_design () in
  let src = Maxj.emit d in
  check_bool "package" true (contains ~needle:"package dhdl.generated;" src);
  check_bool "extends Kernel" true (contains ~needle:"extends Kernel" src);
  check_bool "class name" true (contains ~needle:"class DotproductKernel" src);
  check_bool "parameters recorded" true (contains ~needle:"tile=256" src);
  check_bool "counter chains" true (contains ~needle:"CounterChain" src);
  check_bool "lmem commands" true (contains ~needle:"LMemCommandStream" src);
  check_bool "reduction" true (contains ~needle:"Reductions.add" src)

let test_kernel_balanced_braces () =
  let src = Maxj.emit (sample_design ()) in
  check_int "balanced braces" (count_occurrences ~needle:"{" src) (count_occurrences ~needle:"}" src)

let test_one_var_per_stmt () =
  let d = sample_design () in
  let src = Maxj.emit d in
  (* Each load and op statement becomes one DFEVar binding; dotproduct's
     pipe has two loads and a multiply. *)
  check_bool "v0 v1 v2 present" true
    (contains ~needle:"DFEVar v0" src && contains ~needle:"DFEVar v1" src
    && contains ~needle:"DFEVar v2" src)

let test_memory_declarations () =
  let d = sample_design () in
  let src = Maxj.emit d in
  check_bool "bram alloc" true (contains ~needle:"mem.alloc" src);
  check_bool "banks comment" true (contains ~needle:"banks=4" src);
  check_bool "double buffer note" true (contains ~needle:"double-buffered" src)

let test_types () =
  let b = B.create "types" in
  let m = B.bram b "m" Dtype.float32 [ 4 ] in
  let f = B.bram b "f" (Dtype.fixed ~int_bits:12 ~frac_bits:4 ()) [ 4 ] in
  let top =
    B.pipe ~label:"p" ~counters:[ ("i", 0, 4, 1) ] (fun pb ->
        let v = B.load pb m [ B.iter "i" ] in
        let w = B.load pb f [ B.iter "i" ] in
        B.store pb m [ B.iter "i" ] (B.add pb v w))
  in
  let src = Maxj.emit (B.finish b ~top) in
  check_bool "float type" true (contains ~needle:"dfeFloat(8, 24)" src);
  check_bool "fixed type" true (contains ~needle:"dfeFixOffset(16, -4, SignMode.TWOSCOMPLEMENT)" src)

let test_ops_lowered () =
  let b = B.create "ops" in
  let m = B.bram b "m" Dtype.float32 [ 8 ] in
  let top =
    B.pipe ~label:"p" ~counters:[ ("i", 0, 8, 1) ] (fun pb ->
        let v = B.load pb m [ B.iter "i" ] in
        let s = B.op pb Op.Sqrt [ v ] in
        let e = B.op pb Op.Exp [ s ] in
        let c = B.op pb Op.Lt [ e; B.const 1.0 ] in
        B.store pb m [ B.iter "i" ] (B.mux pb c e v))
  in
  let src = Maxj.emit (B.finish b ~top) in
  check_bool "sqrt" true (contains ~needle:"KernelMath.sqrt" src);
  check_bool "exp" true (contains ~needle:"KernelMath.exp" src);
  check_bool "ternary mux" true (contains ~needle:"?" src)

let test_flat_addressing () =
  let b = B.create "addr" in
  let m = B.bram b "m" Dtype.float32 [ 4; 8 ] in
  let top =
    B.pipe ~label:"p" ~counters:[ ("i", 0, 4, 1); ("j", 0, 8, 1) ] (fun pb ->
        B.store pb m [ B.iter "i"; B.iter "j" ] (B.const 0.0))
  in
  let src = Maxj.emit (B.finish b ~top) in
  check_bool "row-major flatten" true (contains ~needle:"(i * 8 + j)" src)

let test_manager () =
  let d = sample_design () in
  let src = Maxj.emit_manager d in
  check_bool "manager class" true (contains ~needle:"class DotproductKernelManager" src);
  (* dotproduct has two off-chip arrays -> two LMem interfaces. *)
  check_int "lmem interfaces" 2 (count_occurrences ~needle:"addLMemInterface" src);
  check_int "balanced" (count_occurrences ~needle:"{" src) (count_occurrences ~needle:"}" src)

let test_all_benchmarks_emit () =
  List.iter
    (fun (app : App.t) ->
      let d = App.generate_default app app.App.test_sizes in
      let src = Maxj.emit d in
      check_bool (app.App.name ^ " emits") true (String.length src > 500);
      check_int
        (app.App.name ^ " balanced")
        (count_occurrences ~needle:"{" src)
        (count_occurrences ~needle:"}" src))
    Dhdl_apps.Registry.all

let test_dot_structure () =
  let d = sample_design () in
  let dot = Dhdl_codegen.Dot.emit d in
  check_bool "digraph" true (contains ~needle:"digraph dotproduct" dot);
  check_bool "offchip cylinder" true (contains ~needle:"shape=cylinder" dot);
  check_bool "clusters per controller" true (contains ~needle:"subgraph cluster_" dot);
  check_bool "metapipe label" true (contains ~needle:"MetaPipe tiles" dot);
  check_bool "reduction node" true (contains ~needle:"invtriangle" dot);
  check_int "braces balanced" (count_occurrences ~needle:"{" dot) (count_occurrences ~needle:"}" dot)

let test_dot_all_benchmarks () =
  List.iter
    (fun (app : App.t) ->
      let d = App.generate_default app app.App.test_sizes in
      let dot = Dhdl_codegen.Dot.emit d in
      check_bool (app.App.name ^ " dot") true (String.length dot > 200))
    Dhdl_apps.Registry.all

let () =
  Alcotest.run "codegen"
    [
      ( "maxj",
        [
          Alcotest.test_case "class name" `Quick test_class_name;
          Alcotest.test_case "kernel structure" `Quick test_kernel_structure;
          Alcotest.test_case "balanced braces" `Quick test_kernel_balanced_braces;
          Alcotest.test_case "one var per stmt" `Quick test_one_var_per_stmt;
          Alcotest.test_case "memory declarations" `Quick test_memory_declarations;
          Alcotest.test_case "types" `Quick test_types;
          Alcotest.test_case "ops lowered" `Quick test_ops_lowered;
          Alcotest.test_case "flat addressing" `Quick test_flat_addressing;
          Alcotest.test_case "manager" `Quick test_manager;
          Alcotest.test_case "all benchmarks emit" `Quick test_all_benchmarks_emit;
        ] );
      ( "dot",
        [
          Alcotest.test_case "structure" `Quick test_dot_structure;
          Alcotest.test_case "all benchmarks" `Quick test_dot_all_benchmarks;
        ] );
    ]
