(* Tests for the simulated vendor toolchain: netlist elaboration, delay
   balancing, datapath fusion, and place-and-route effects. *)

module Ir = Dhdl_ir.Ir
module Op = Dhdl_ir.Op
module Dtype = Dhdl_ir.Dtype
module B = Dhdl_ir.Builder
module R = Dhdl_device.Resources
module Target = Dhdl_device.Target
module Primitives = Dhdl_device.Primitives
module Netlist = Dhdl_synth.Netlist
module Par_effects = Dhdl_synth.Par_effects
module Toolchain = Dhdl_synth.Toolchain
module Report = Dhdl_synth.Report

let dev = Target.stratix_v
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* One-pipe designs with a configurable body. *)
let pipe_design ?(par = 1) label build =
  let b = B.create label in
  let xt = B.bram b "xT" Dtype.float32 [ 64 ] in
  let top = B.pipe ~label:"p" ~counters:[ ("i", 0, 64, 1) ] ~par (fun pb -> build pb xt) in
  B.finish b ~top

let reduce_design ?(par = 1) label build =
  let b = B.create label in
  let xt = B.bram b "xT" Dtype.float32 [ 64 ] in
  let out = B.reg b "out" Dtype.float32 in
  let top =
    B.reduce_pipe ~label:"p" ~counters:[ ("i", 0, 64, 1) ] ~par ~op:Op.Add ~out (fun pb ->
        build pb xt)
  in
  B.finish b ~top

(* ------------------------- Elaboration ----------------------------- *)

let test_netlist_counts () =
  let d =
    pipe_design "counts" (fun pb xt ->
        let v = B.load pb xt [ B.iter "i" ] in
        B.store pb xt [ B.iter "i" ] (B.mul pb v v) |> ignore)
  in
  let n = Netlist.elaborate dev d in
  check_bool "luts" true (R.luts n.Netlist.raw > 0);
  check_bool "nets" true (n.Netlist.nets > 0);
  check_int "streams" 0 n.Netlist.streams;
  check_int "ctrls" 1 n.Netlist.ctrl_count;
  check_int "prims (3 stmts x par 1)" 3 n.Netlist.prim_count;
  check_bool "fanout sane" true (n.Netlist.avg_fanout > 0.0 && n.Netlist.avg_fanout < 20.0)

let test_par_scales_compute () =
  let body pb xt = ignore (B.mul pb (B.load pb xt [ B.iter "i" ]) (B.const 2.0)) in
  let r1 = (Netlist.elaborate dev (pipe_design ~par:1 "p1" body)).Netlist.raw in
  let r8 = (Netlist.elaborate dev (pipe_design ~par:8 "p8" body)).Netlist.raw in
  check_bool "8x lanes cost more" true (R.luts r8 > 4 * R.luts r1);
  check_int "dsps scale linearly" (8 * r1.R.dsps) r8.R.dsps

let test_replication_scales () =
  let make par =
    let b = B.create "repl" in
    let inner =
      B.pipe ~label:"p" ~counters:[ ("i", 0, 8, 1) ] (fun pb ->
          ignore (B.op pb Op.Mul [ B.const 2.0; B.const 3.0 ]))
    in
    B.finish b ~top:(B.metapipe ~label:"m" ~counters:[ ("t", 0, 32, 1) ] ~par ~pipelined:false [ inner ])
  in
  let d1 = (Netlist.elaborate dev (make 1)).Netlist.raw in
  let d4 = (Netlist.elaborate dev (make 4)).Netlist.raw in
  check_bool "outer par replicates subtree" true (d4.R.dsps = 4 * d1.R.dsps)

let test_mem_blocks () =
  let b = B.create "mems" in
  let m = B.bram b "m" Dtype.float32 [ 1024 ] in
  let top =
    B.pipe ~label:"p" ~counters:[ ("i", 0, 1024, 1) ] ~par:4 (fun pb ->
        B.store pb m [ B.iter "i" ] (B.const 0.0))
  in
  let d = B.finish b ~top in
  (* 4 banks x 256 words each -> 4 blocks (512-deep min). *)
  check_int "banked blocks" 4 (Netlist.bram_blocks_of_mem dev (Ir.find_mem d "m"))

let test_double_buffer_doubles_blocks () =
  let b = B.create "dbl" in
  let x = B.offchip b "x" Dtype.float32 [ 4096 ] in
  let m = B.bram b "m" Dtype.float32 [ 1024 ] in
  let consume =
    B.pipe ~label:"p" ~counters:[ ("i", 0, 1024, 1) ] (fun pb ->
        ignore (B.load pb m [ B.iter "i" ]))
  in
  let top =
    B.metapipe ~label:"outer" ~counters:[ ("t", 0, 4096, 1024) ] ~pipelined:true
      [ B.tile_load ~src:x ~dst:m ~offsets:[ B.iter "t" ] (); consume ]
  in
  let d = B.finish b ~top in
  check_int "double buffering doubles BRAM" 4 (Netlist.bram_blocks_of_mem dev (Ir.find_mem d "m"))

(* ------------------------- Scheduling ------------------------------ *)

let test_critical_path_chain () =
  (* mul (6) then add (7): depth 1 + 6 + 7 = 14 with the 1-cycle load. *)
  let d =
    pipe_design "chain" (fun pb xt ->
        let v = B.load pb xt [ B.iter "i" ] in
        let m = B.mul pb v v in
        ignore (B.add pb m (B.const 1.0)))
  in
  let pipe = List.hd (Dhdl_ir.Traverse.pipes d) in
  check_int "depth" 14 (Netlist.pipe_critical_path pipe)

let test_delay_balancing_regs () =
  (* A skewed join: one path through exp (17 cycles), one direct. The
     direct operand needs a delay line. *)
  let d =
    pipe_design "skew" (fun pb xt ->
        let v = B.load pb xt [ B.iter "i" ] in
        let slow = B.op pb Op.Exp [ v ] in
        ignore (B.add pb slow v))
  in
  let pipe = List.hd (Dhdl_ir.Traverse.pipes d) in
  let delays = Netlist.pipe_delay_resources dev pipe in
  check_bool "balanced path uses brams (17 > threshold)" true (delays.R.brams >= 1)

let test_delay_balancing_short_slack () =
  let d =
    pipe_design "short" (fun pb xt ->
        let v = B.load pb xt [ B.iter "i" ] in
        let slow = B.op pb Op.Min [ v; B.const 0.0 ] in
        ignore (B.add pb slow v))
  in
  let pipe = List.hd (Dhdl_ir.Traverse.pipes d) in
  let delays = Netlist.pipe_delay_resources dev pipe in
  check_int "short slack in registers" 0 delays.R.brams;
  check_bool "some registers" true (delays.R.regs > 0)

let test_balanced_no_delays () =
  let d =
    pipe_design "bal" (fun pb xt ->
        let v = B.load pb xt [ B.iter "i" ] in
        ignore (B.mul pb v v))
  in
  let pipe = List.hd (Dhdl_ir.Traverse.pipes d) in
  check_bool "no delays" true (R.equal R.zero (Netlist.pipe_delay_resources dev pipe))

(* ------------------------- Fusion ---------------------------------- *)

let test_fma_fusion () =
  let fused_design =
    pipe_design "fma" (fun pb xt ->
        let v = B.load pb xt [ B.iter "i" ] in
        let m = B.mul pb v (B.const 2.0) in
        ignore (B.add pb m (B.const 1.0)))
  in
  check_int "one fused pair" 1 (Netlist.elaborate dev fused_design).Netlist.fused_fmas;
  (* A multiply with two uses cannot fuse. *)
  let unfused =
    pipe_design "nofma" (fun pb xt ->
        let v = B.load pb xt [ B.iter "i" ] in
        let m = B.mul pb v (B.const 2.0) in
        let _ = B.add pb m (B.const 1.0) in
        ignore (B.add pb m (B.const 2.0)))
  in
  check_int "no fusion on fanout" 0 (Netlist.elaborate dev unfused).Netlist.fused_fmas

let test_reduce_tree_fusion_savings () =
  (* A multiply feeding a wide float reduction tree fuses its first level:
     the fused netlist must be smaller than par * (mul + add) + tree. *)
  let mk par =
    reduce_design ~par "tree" (fun pb xt ->
        let v = B.load pb xt [ B.iter "i" ] in
        B.mul pb v v)
  in
  let n8 = Netlist.elaborate dev (mk 8) in
  check_bool "tree fusions counted" true (n8.Netlist.fused_fmas >= 4)

(* ------------------------- P&R effects ----------------------------- *)

let big_design () =
  List.nth (Dhdl_model.Design_gen.corpus ~seed:5 3) 2

let test_congestion_range () =
  let n = Netlist.elaborate dev (big_design ()) in
  let c = Par_effects.congestion n in
  check_bool "congestion in [0,1]" true (c >= 0.0 && c <= 1.0)

let test_par_deterministic () =
  let d = big_design () in
  let a = Toolchain.synthesize ~dev d in
  let b = Toolchain.synthesize ~dev d in
  check_bool "same report" true (a = b)

let test_report_consistency () =
  let d = big_design () in
  let n = Netlist.elaborate dev d in
  let rpt = Par_effects.apply dev ~seed:42 n in
  check_int "lut total = raw + route + unavail"
    (R.luts n.Netlist.raw + rpt.Report.luts_routing + rpt.Report.luts_unavailable)
    rpt.Report.luts;
  check_bool "regs include duplicates" true (rpt.Report.regs >= n.Netlist.raw.R.regs);
  check_bool "brams include duplicates" true (rpt.Report.brams >= n.Netlist.raw.R.brams);
  check_bool "alms positive" true (rpt.Report.alms > 0);
  check_bool "packing happened" true (rpt.Report.packed_pairs > 0)

let test_route_fraction_plausible () =
  (* Section IV.A: route-throughs are around 10% of LUTs. *)
  let d = big_design () in
  let n = Netlist.elaborate dev d in
  let rpt = Par_effects.apply dev ~seed:42 n in
  let frac = float_of_int rpt.Report.luts_routing /. float_of_int (R.luts n.Netlist.raw) in
  check_bool "5-20%" true (frac > 0.04 && frac < 0.20)

let test_dsp_noise_zero_base () =
  (* Designs with no DSPs never gain phantom DSPs. *)
  let d =
    pipe_design "nodsp" (fun pb xt ->
        let v = B.load pb xt [ B.iter "i" ] in
        ignore (B.add pb v v))
  in
  check_int "no phantom dsps" 0 (Toolchain.synthesize ~dev d).Report.dsps

let test_fits_and_utilization () =
  let d =
    pipe_design "tiny" (fun pb xt -> ignore (B.load pb xt [ B.iter "i" ]))
  in
  let rpt = Toolchain.synthesize ~dev d in
  check_bool "tiny design fits" true (Report.fits dev rpt);
  let alm, dsp, bram = Report.utilization dev rpt in
  check_bool "utilizations sane" true (alm >= 0.0 && alm < 1.0 && dsp = 0.0 && bram >= 0.0)

let test_synthesis_time_model () =
  let n = Netlist.elaborate dev (big_design ()) in
  let t = Toolchain.synthesis_wall_seconds n in
  check_bool "minutes to hours" true (t > 60.0 && t < 48.0 *. 3600.0)

let () =
  Alcotest.run "synth"
    [
      ( "elaboration",
        [
          Alcotest.test_case "netlist counts" `Quick test_netlist_counts;
          Alcotest.test_case "par scales compute" `Quick test_par_scales_compute;
          Alcotest.test_case "replication scales" `Quick test_replication_scales;
          Alcotest.test_case "mem blocks" `Quick test_mem_blocks;
          Alcotest.test_case "double buffer blocks" `Quick test_double_buffer_doubles_blocks;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "critical path" `Quick test_critical_path_chain;
          Alcotest.test_case "delay brams" `Quick test_delay_balancing_regs;
          Alcotest.test_case "delay regs" `Quick test_delay_balancing_short_slack;
          Alcotest.test_case "balanced" `Quick test_balanced_no_delays;
        ] );
      ( "fusion",
        [
          Alcotest.test_case "fma pairs" `Quick test_fma_fusion;
          Alcotest.test_case "reduce tree" `Quick test_reduce_tree_fusion_savings;
        ] );
      ( "par_effects",
        [
          Alcotest.test_case "congestion range" `Quick test_congestion_range;
          Alcotest.test_case "deterministic" `Quick test_par_deterministic;
          Alcotest.test_case "report consistency" `Quick test_report_consistency;
          Alcotest.test_case "route fraction" `Quick test_route_fraction_plausible;
          Alcotest.test_case "dsp zero base" `Quick test_dsp_noise_zero_base;
          Alcotest.test_case "fits/utilization" `Quick test_fits_and_utilization;
          Alcotest.test_case "synthesis time" `Quick test_synthesis_time_model;
        ] );
    ]
