(* Tests for the machine-learning layer: min-max scaling, linear regression
   and the multilayer perceptron with RPROP training (Encog's model class,
   Section IV.B.2). *)

module Mlp = Dhdl_ml.Mlp
module Scaler = Dhdl_ml.Scaler
module Linreg = Dhdl_ml.Linreg
module Rng = Dhdl_util.Rng

let check_float = Alcotest.(check (float 1e-6))
let check_bool = Alcotest.(check bool)

(* ------------------------- Scaler ---------------------------------- *)

let test_scaler_bounds () =
  let samples = [ [| 0.0; 10.0 |]; [| 5.0; 20.0 |]; [| 10.0; 30.0 |] ] in
  let s = Scaler.fit samples in
  Alcotest.(check int) "dim" 2 (Scaler.dim s);
  let t = Scaler.transform s [| 5.0; 20.0 |] in
  check_float "mid x" 0.5 t.(0);
  check_float "mid y" 0.5 t.(1);
  let lo = Scaler.transform s [| 0.0; 10.0 |] in
  check_float "low" 0.0 lo.(0);
  let hi = Scaler.transform s [| 10.0; 30.0 |] in
  check_float "high" 1.0 hi.(1)

let test_scaler_zero_range () =
  let s = Scaler.fit [ [| 7.0 |]; [| 7.0 |] ] in
  check_float "constant column maps to 0.5" 0.5 (Scaler.transform s [| 7.0 |]).(0)

let test_scaler_value_roundtrip () =
  let v = Scaler.transform_value ~lo:10.0 ~hi:20.0 15.0 in
  check_float "forward" 0.5 v;
  check_float "inverse" 15.0 (Scaler.inverse_value ~lo:10.0 ~hi:20.0 v)

let test_scaler_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Scaler.fit: empty sample list") (fun () ->
      ignore (Scaler.fit []))

(* ------------------------- Linreg ---------------------------------- *)

let test_linreg_exact () =
  (* y = 2a - 3b + 5 *)
  let samples =
    [
      ([| 0.0; 0.0 |], 5.0);
      ([| 1.0; 0.0 |], 7.0);
      ([| 0.0; 1.0 |], 2.0);
      ([| 2.0; 1.0 |], 6.0);
      ([| 3.0; 2.0 |], 5.0);
    ]
  in
  let m = Linreg.fit samples in
  Alcotest.(check (float 1e-3)) "coef a" 2.0 (Linreg.coefficients m).(0);
  Alcotest.(check (float 1e-3)) "coef b" (-3.0) (Linreg.coefficients m).(1);
  Alcotest.(check (float 1e-3)) "intercept" 5.0 (Linreg.intercept m);
  Alcotest.(check (float 1e-3)) "predict" 4.0 (Linreg.predict m [| 1.0; 1.0 |]);
  Alcotest.(check (float 1e-6)) "r2 exact" 1.0 (Linreg.r_squared m samples)

let test_linreg_noisy_r2 () =
  let rng = Rng.create 4 in
  let samples =
    List.init 50 (fun i ->
        let x = float_of_int i in
        ([| x |], (2.0 *. x) +. Rng.gaussian rng ~mean:0.0 ~sigma:5.0))
  in
  let m = Linreg.fit samples in
  let r2 = Linreg.r_squared m samples in
  check_bool "good but not perfect" true (r2 > 0.9 && r2 < 1.0)

let test_linreg_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Linreg.fit: empty sample list") (fun () ->
      ignore (Linreg.fit []))

(* ------------------------- Mlp ------------------------------------- *)

let test_mlp_shape () =
  let net = Mlp.create ~layer_sizes:[ 11; 6; 1 ] () in
  Alcotest.(check int) "inputs" 11 (Mlp.inputs net);
  Alcotest.(check int) "outputs" 1 (Mlp.outputs net)

let test_mlp_deterministic () =
  let net = Mlp.create ~rng:(Rng.create 9) ~layer_sizes:[ 3; 4; 2 ] () in
  let a = Mlp.predict net [| 0.1; 0.2; 0.3 |] in
  let b = Mlp.predict net [| 0.1; 0.2; 0.3 |] in
  Alcotest.(check (float 0.0)) "same output 0" a.(0) b.(0);
  Alcotest.(check (float 0.0)) "same output 1" a.(1) b.(1)

let xor_samples =
  [
    ([| 0.0; 0.0 |], [| 0.0 |]);
    ([| 0.0; 1.0 |], [| 1.0 |]);
    ([| 1.0; 0.0 |], [| 1.0 |]);
    ([| 1.0; 1.0 |], [| 0.0 |]);
  ]

let test_mlp_rprop_xor () =
  let net = Mlp.create ~rng:(Rng.create 17) ~layer_sizes:[ 2; 6; 1 ] () in
  let mse = Mlp.train_rprop ~epochs:600 net xor_samples in
  Alcotest.(check bool) "xor learned" true (mse < 0.01);
  List.iter
    (fun (x, t) ->
      let y = Mlp.predict1 net x in
      Alcotest.(check bool) "classified" true (Float.abs (y -. t.(0)) < 0.3))
    xor_samples

let test_mlp_rprop_quadratic () =
  (* The universal-approximation claim the paper cites [35]: fit x^2. *)
  let samples =
    List.init 21 (fun i ->
        let x = float_of_int i /. 20.0 in
        ([| x |], [| x *. x |]))
  in
  let net = Mlp.create ~rng:(Rng.create 23) ~layer_sizes:[ 1; 6; 1 ] () in
  let mse = Mlp.train_rprop ~epochs:800 net samples in
  Alcotest.(check bool) "quadratic fit" true (mse < 1e-3)

let test_mlp_sgd_reduces_error () =
  let net = Mlp.create ~rng:(Rng.create 31) ~layer_sizes:[ 2; 6; 1 ] () in
  let before = Mlp.mse net xor_samples in
  let after = Mlp.train_sgd ~epochs:400 ~rate:0.3 net xor_samples in
  Alcotest.(check bool) "sgd improves" true (after < before)

let test_mlp_multi_output () =
  (* Learn [sum; product] of two inputs on a small grid. *)
  let samples =
    List.concat_map
      (fun i ->
        List.map
          (fun j ->
            let a = float_of_int i /. 4.0 and b = float_of_int j /. 4.0 in
            ([| a; b |], [| (a +. b) /. 2.0; a *. b |]))
          [ 0; 1; 2; 3; 4 ])
      [ 0; 1; 2; 3; 4 ]
  in
  let net = Mlp.create ~rng:(Rng.create 41) ~layer_sizes:[ 2; 8; 2 ] () in
  let mse = Mlp.train_rprop ~epochs:800 net samples in
  Alcotest.(check bool) "two-output regression" true (mse < 5e-3)

let test_mlp_early_stop () =
  (* With target_mse huge, training stops after the first epoch. *)
  let net = Mlp.create ~rng:(Rng.create 5) ~layer_sizes:[ 2; 4; 1 ] () in
  let mse = Mlp.train_rprop ~epochs:100000 ~target_mse:1e9 net xor_samples in
  Alcotest.(check bool) "stops early" true (mse < 1e9 +. 1.0)

let () =
  Alcotest.run "ml"
    [
      ( "scaler",
        [
          Alcotest.test_case "bounds" `Quick test_scaler_bounds;
          Alcotest.test_case "zero range" `Quick test_scaler_zero_range;
          Alcotest.test_case "value roundtrip" `Quick test_scaler_value_roundtrip;
          Alcotest.test_case "empty" `Quick test_scaler_empty;
        ] );
      ( "linreg",
        [
          Alcotest.test_case "exact fit" `Quick test_linreg_exact;
          Alcotest.test_case "noisy r2" `Quick test_linreg_noisy_r2;
          Alcotest.test_case "empty" `Quick test_linreg_empty;
        ] );
      ( "mlp",
        [
          Alcotest.test_case "shape" `Quick test_mlp_shape;
          Alcotest.test_case "deterministic" `Quick test_mlp_deterministic;
          Alcotest.test_case "rprop xor" `Quick test_mlp_rprop_xor;
          Alcotest.test_case "rprop quadratic" `Quick test_mlp_rprop_quadratic;
          Alcotest.test_case "sgd improves" `Quick test_mlp_sgd_reduces_error;
          Alcotest.test_case "multi output" `Quick test_mlp_multi_output;
          Alcotest.test_case "early stop" `Quick test_mlp_early_stop;
        ] );
    ]
