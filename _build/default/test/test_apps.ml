(* Tests for the benchmark suite: every Table II application validates,
   executes correctly against its CPU reference kernel (at multiple design
   points), and exposes a sane design space. *)

module Ir = Dhdl_ir.Ir
module App = Dhdl_apps.App
module Registry = Dhdl_apps.Registry
module Space = Dhdl_dse.Space
module Interp = Dhdl_sim.Interp
module K = Dhdl_cpu.Kernels
module Rng = Dhdl_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let close ?(tol = 1e-3) a b =
  let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) /. scale < tol

let check_arrays name a b =
  check_int (name ^ " length") (Array.length b) (Array.length a);
  Array.iteri
    (fun i x ->
      if not (close x b.(i)) then
        Alcotest.failf "%s differs at %d: %f vs %f" name i x b.(i))
    a

let rand_array rng n = Array.init n (fun _ -> Rng.float_in rng (-2.0) 2.0)
let rand_bits rng n = Array.init n (fun _ -> if Rng.bool rng then 1.0 else 0.0)

(* ------------------------- Registry -------------------------------- *)

let test_registry () =
  check_int "seven benchmarks" 7 (List.length Registry.all);
  Alcotest.(check (list string)) "paper order"
    [ "dotproduct"; "outerprod"; "gemm"; "tpchq6"; "blackscholes"; "gda"; "kmeans" ]
    Registry.names;
  check_bool "find" true ((Registry.find "gda").App.name = "gda");
  check_bool "missing raises" true
    (try
       ignore (Registry.find "nope");
       false
     with Not_found -> true)

(* ------------------------- Structural checks ----------------------- *)

let test_all_validate_at_test_sizes () =
  List.iter
    (fun (app : App.t) ->
      let d = App.generate_default app app.App.test_sizes in
      Alcotest.(check (list string)) (app.App.name ^ " valid") [] (Dhdl_ir.Analysis.validate d))
    Registry.all

let test_all_validate_at_paper_sizes () =
  List.iter
    (fun (app : App.t) ->
      let d = App.generate_default app app.App.paper_sizes in
      Alcotest.(check (list string)) (app.App.name ^ " valid") [] (Dhdl_ir.Analysis.validate d))
    Registry.all

let test_spaces_nonempty_and_legal () =
  List.iter
    (fun (app : App.t) ->
      let space = app.App.space app.App.paper_sizes in
      check_bool (app.App.name ^ " space") true (Space.raw_size space > 100);
      let pts = Space.sample space ~seed:3 ~max_points:25 in
      check_bool (app.App.name ^ " has legal points") true (pts <> []);
      (* Every sampled point must instantiate to a valid design. *)
      List.iter
        (fun p ->
          Alcotest.(check (list string))
            (app.App.name ^ " point valid")
            []
            (Dhdl_ir.Analysis.validate (app.App.generate ~sizes:app.App.paper_sizes ~params:p)))
        pts)
    Registry.all

let test_generation_deterministic () =
  List.iter
    (fun (app : App.t) ->
      let a = App.generate_default app app.App.test_sizes in
      let b = App.generate_default app app.App.test_sizes in
      check_int (app.App.name ^ " hash") (Ir.design_hash a) (Ir.design_hash b))
    Registry.all

let test_params_recorded () =
  let app = Registry.find "gda" in
  let d = App.generate_default app app.App.test_sizes in
  check_bool "params in design" true (List.mem_assoc "parP1" d.Ir.d_params)

(* ------------------------- Functional correctness ------------------ *)

let run_app app sizes params inputs = Interp.run (app.App.generate ~sizes ~params) ~inputs

let test_dotproduct_correct () =
  let app = Registry.find "dotproduct" in
  let rng = Rng.create 100 in
  let n = 1024 in
  let x = rand_array rng n and y = rand_array rng n in
  (* Several design points, including sequential and wide-vector ones. *)
  List.iter
    (fun (tile, par, meta) ->
      let env =
        run_app app [ ("n", n) ]
          [ ("tile", tile); ("par", par); ("meta", meta) ]
          [ ("x", x); ("y", y) ]
      in
      check_bool
        (Printf.sprintf "tile=%d par=%d meta=%d" tile par meta)
        true
        (close (Interp.reg env "result") (K.dotproduct x y)))
    [ (64, 1, 0); (128, 8, 1); (1024, 64, 1); (256, 3, 1) ]

let test_outerprod_correct () =
  let app = Registry.find "outerprod" in
  let rng = Rng.create 101 in
  let n = 64 and m = 48 in
  let x = rand_array rng n and y = rand_array rng m in
  List.iter
    (fun (ta, tb, ma, mb) ->
      let env =
        run_app app
          [ ("n", n); ("m", m) ]
          [ ("tileA", ta); ("tileB", tb); ("par", 4); ("metaA", ma); ("metaB", mb) ]
          [ ("x", x); ("y", y) ]
      in
      check_arrays "outerprod" (Interp.offchip env "out") (K.outerprod x y))
    [ (16, 24, 1, 1); (64, 48, 0, 0); (32, 16, 1, 0) ]

let test_gemm_correct () =
  let app = Registry.find "gemm" in
  let rng = Rng.create 102 in
  let n = 16 and m = 12 and k = 8 in
  let a = rand_array rng (n * k) and b = rand_array rng (k * m) in
  List.iter
    (fun (tn, tm, tk, mk) ->
      let env =
        run_app app
          [ ("n", n); ("m", m); ("k", k) ]
          [ ("tileN", tn); ("tileM", tm); ("tileK", tk); ("par", 2); ("metaK", mk); ("metaR", 0) ]
          [ ("a", a); ("b", b) ]
      in
      check_arrays "gemm" (Interp.offchip env "c") (K.gemm ~n ~m ~k a b))
    [ (16, 12, 8, 1); (4, 4, 4, 0); (8, 6, 2, 1) ]

let test_tpchq6_correct () =
  let app = Registry.find "tpchq6" in
  let rng = Rng.create 103 in
  let n = 512 in
  let prices = Array.init n (fun _ -> Rng.float_in rng 1.0 100.0) in
  let discounts = Array.init n (fun _ -> Rng.float_in rng 0.0 0.11) in
  let quantities = Array.init n (fun _ -> float_of_int (Rng.int rng 50)) in
  let dates = Array.init n (fun _ -> float_of_int (Rng.int rng 10) +. 0.5) in
  let env =
    run_app app [ ("n", n) ]
      [ ("tile", 128); ("par", 8); ("meta", 1) ]
      [ ("price", prices); ("discount", discounts); ("quantity", quantities); ("date", dates) ]
  in
  check_bool "revenue matches" true
    (close (Interp.reg env "revenue") (K.tpchq6 ~prices ~discounts ~quantities ~dates))

let test_blackscholes_correct () =
  let app = Registry.find "blackscholes" in
  let rng = Rng.create 104 in
  let n = 256 in
  let spot = Array.init n (fun _ -> Rng.float_in rng 20.0 120.0) in
  let strike = Array.init n (fun _ -> Rng.float_in rng 20.0 120.0) in
  let time = Array.init n (fun _ -> Rng.float_in rng 0.25 4.0) in
  let otype = rand_bits rng n in
  let env =
    run_app app [ ("n", n) ]
      [ ("tile", 64); ("par", 4); ("meta", 1) ]
      [ ("spot", spot); ("strike", strike); ("time", time); ("otype", otype) ]
  in
  let expected =
    K.blackscholes ~spot ~strike ~time ~rate:Dhdl_apps.Blackscholes_app.rate
      ~volatility:Dhdl_apps.Blackscholes_app.volatility ~otype
  in
  check_arrays "blackscholes" (Interp.offchip env "price") expected

let test_gda_correct () =
  let app = Registry.find "gda" in
  let rng = Rng.create 105 in
  let r = 48 and d = 8 in
  let x = rand_array rng (r * d) and y = rand_bits rng r in
  let mu0 = rand_array rng d and mu1 = rand_array rng d in
  List.iter
    (fun (tile, m1, m2) ->
      let env =
        run_app app
          [ ("r", r); ("d", d) ]
          [ ("tile", tile); ("parP1", 4); ("parP2", 8); ("metaM1", m1); ("metaM2", m2) ]
          [ ("x", x); ("y", y); ("mu0", mu0); ("mu1", mu1) ]
      in
      check_arrays "gda" (Interp.offchip env "sigma") (K.gda ~rows:r ~cols:d ~x ~y ~mu0 ~mu1))
    [ (24, 1, 1); (48, 0, 0); (8, 1, 0) ]

let test_kmeans_correct () =
  let app = Registry.find "kmeans" in
  let rng = Rng.create 106 in
  let n = 64 and d = 8 and k = 4 in
  let data = rand_array rng (n * d) in
  let cents = rand_array rng (k * d) in
  let env =
    run_app app
      [ ("n", n); ("k", k); ("d", d) ]
      [ ("tile", 16); ("parDist", 4); ("parAcc", 2); ("parPoints", 4); ("meta", 1) ]
      [ ("points", data); ("centroids", cents) ]
  in
  let sums, counts = K.kmeans_sums ~points:n ~dims:d ~k ~data ~centroids:cents in
  check_arrays "sums" (Interp.offchip env "sums") sums;
  check_arrays "counts" (Interp.offchip env "counts") counts

let prop_gda_param_invariance =
  (* Whatever legal parameters the DSE picks, the computed sigma is the
     same — the guarantee that makes exploring over the template parameters
     safe. *)
  QCheck.Test.make ~name:"gda results invariant under parameters" ~count:15 QCheck.small_int
    (fun seed ->
      let app = Registry.find "gda" in
      let sizes = [ ("r", 24); ("d", 8) ] in
      let rng = Rng.create (seed + 7) in
      let x = rand_array rng (24 * 8) and y = rand_bits rng 24 in
      let mu0 = rand_array rng 8 and mu1 = rand_array rng 8 in
      let space = app.App.space sizes in
      let point = List.hd (Space.sample space ~seed ~max_points:1) in
      let env =
        run_app app sizes point [ ("x", x); ("y", y); ("mu0", mu0); ("mu1", mu1) ]
      in
      let expect = K.gda ~rows:24 ~cols:8 ~x ~y ~mu0 ~mu1 in
      Array.for_all2 close (Interp.offchip env "sigma") expect)

let () =
  Alcotest.run "apps"
    [
      ("registry", [ Alcotest.test_case "suite" `Quick test_registry ]);
      ( "structure",
        [
          Alcotest.test_case "validate test sizes" `Quick test_all_validate_at_test_sizes;
          Alcotest.test_case "validate paper sizes" `Quick test_all_validate_at_paper_sizes;
          Alcotest.test_case "spaces legal" `Quick test_spaces_nonempty_and_legal;
          Alcotest.test_case "deterministic" `Quick test_generation_deterministic;
          Alcotest.test_case "params recorded" `Quick test_params_recorded;
        ] );
      ( "correctness",
        [
          Alcotest.test_case "dotproduct" `Quick test_dotproduct_correct;
          Alcotest.test_case "outerprod" `Quick test_outerprod_correct;
          Alcotest.test_case "gemm" `Quick test_gemm_correct;
          Alcotest.test_case "tpchq6" `Quick test_tpchq6_correct;
          Alcotest.test_case "blackscholes" `Quick test_blackscholes_correct;
          Alcotest.test_case "gda" `Quick test_gda_correct;
          Alcotest.test_case "kmeans" `Quick test_kmeans_correct;
          QCheck_alcotest.to_alcotest prop_gda_param_invariance;
        ] );
    ]
