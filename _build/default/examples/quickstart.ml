(* Quickstart: author a small accelerator in the DHDL embedded language,
   check it, run it on real data, and estimate its FPGA cost.

   The kernel: a tiled SAXPY-like stream, y[i] = a * x[i] + y[i], with the
   running sum of the results reduced into an on-chip register.

     dune exec examples/quickstart.exe
*)

module Ir = Dhdl_ir.Ir
module B = Dhdl_ir.Builder
module Op = Dhdl_ir.Op
module Dtype = Dhdl_ir.Dtype

let build ~n ~tile ~par =
  let b = B.create ~params:[ ("tile", tile); ("par", par) ] "saxpy" in
  (* Off-chip arrays and on-chip tiles. *)
  let x = B.offchip b "x" Dtype.float32 [ n ] in
  let y = B.offchip b "y" Dtype.float32 [ n ] in
  let xt = B.bram b "xT" Dtype.float32 [ tile ] in
  let yt = B.bram b "yT" Dtype.float32 [ tile ] in
  let partial = B.reg b "partial" Dtype.float32 in
  let total = B.reg b "total" Dtype.float32 in
  (* The compute stage: one vectorized pipeline over the tile, reducing the
     updated values into [partial]. *)
  let compute =
    B.reduce_pipe ~label:"axpy" ~counters:[ ("i", 0, tile, 1) ] ~par ~op:Op.Add ~out:partial
      (fun pb ->
        let xv = B.load pb xt [ B.iter "i" ] in
        let yv = B.load pb yt [ B.iter "i" ] in
        let r = B.add pb (B.mul pb (B.const 2.0) xv) yv in
        B.store pb yt [ B.iter "i" ] r;
        r)
  in
  (* Tile loop: a MetaPipe overlaps loads, compute and the store of each
     tile; the per-tile partial sums fold into [total]. *)
  let top =
    B.metapipe ~label:"tiles"
      ~counters:[ ("t", 0, n, tile) ]
      ~reduce:(Op.Add, partial, total)
      [
        B.parallel ~label:"loads"
          [
            B.tile_load ~src:x ~dst:xt ~offsets:[ B.iter "t" ] ~par ();
            B.tile_load ~src:y ~dst:yt ~offsets:[ B.iter "t" ] ~par ();
          ];
        compute;
        B.tile_store ~dst:y ~src:yt ~offsets:[ B.iter "t" ] ~par ();
      ]
  in
  B.finish b ~top

let () =
  let n = 4096 and tile = 256 and par = 8 in
  let design = build ~n ~tile ~par in

  (* 1. Static checking. *)
  Dhdl_ir.Analysis.validate_exn design;
  Printf.printf "design is well-formed; IR listing:\n\n%s\n\n" (Dhdl_ir.Pretty.design design);

  (* 2. Functional execution on real data. *)
  let x = Array.init n (fun i -> float_of_int (i mod 10)) in
  let y = Array.init n (fun i -> float_of_int (i mod 7)) in
  let env = Dhdl_sim.Interp.run design ~inputs:[ ("x", x); ("y", y) ] in
  let expected = Array.init n (fun i -> (2.0 *. x.(i)) +. y.(i)) in
  let got = Dhdl_sim.Interp.offchip env "y" in
  Array.iteri (fun i v -> assert (Float.abs (v -. expected.(i)) < 1e-6)) got;
  Printf.printf "interpreter matches the reference kernel; total = %g\n"
    (Dhdl_sim.Interp.reg env "total");

  (* 3. Performance simulation (the "measured" runtime). *)
  let sim = Dhdl_sim.Perf_sim.simulate design in
  Printf.printf "cycle-accurate simulation: %.0f cycles (%.2f us at 150 MHz)\n"
    sim.Dhdl_sim.Perf_sim.cycles
    (sim.Dhdl_sim.Perf_sim.seconds *. 1e6);

  (* 4. The simulated vendor toolchain's post-place-and-route report. *)
  let report = Dhdl_synth.Toolchain.synthesize design in
  Printf.printf "post-P&R: %s\n" (Dhdl_synth.Report.to_string report);

  (* 5. The paper's estimator (characterize + train once, then estimate in
     microseconds per design). *)
  let est = Dhdl_model.Estimator.create ~train_samples:120 ~epochs:200 () in
  let e, elapsed = Dhdl_model.Estimator.timed_estimate est design in
  Printf.printf "estimate: %d ALMs (actual %d), %.0f cycles (simulated %.0f) in %.2f ms\n"
    e.Dhdl_model.Estimator.area.Dhdl_model.Estimator.alms report.Dhdl_synth.Report.alms
    e.Dhdl_model.Estimator.cycles sim.Dhdl_sim.Perf_sim.cycles (elapsed *. 1000.0)
