(* Hardware generation: lower the blackscholes benchmark to MaxJ (the
   Maxeler hardware generation language the paper's compiler emits,
   Figure 1 step 5), after checking the design functionally against the
   reference CPU kernel.

     dune exec examples/blackscholes_codegen.exe
*)

module App = Dhdl_apps.App
module K = Dhdl_cpu.Kernels
module Rng = Dhdl_util.Rng

let () =
  let app = Dhdl_apps.Registry.find "blackscholes" in
  (* A small instance for the functional check. *)
  let sizes = app.App.test_sizes in
  let design = App.generate_default app sizes in
  let n = App.size sizes "n" in
  let rng = Rng.create 11 in
  let spot = Array.init n (fun _ -> Rng.float_in rng 20.0 120.0) in
  let strike = Array.init n (fun _ -> Rng.float_in rng 20.0 120.0) in
  let time = Array.init n (fun _ -> Rng.float_in rng 0.25 4.0) in
  let otype = Array.init n (fun _ -> if Rng.bool rng then 1.0 else 0.0) in
  let env =
    Dhdl_sim.Interp.run design
      ~inputs:[ ("spot", spot); ("strike", strike); ("time", time); ("otype", otype) ]
  in
  let got = Dhdl_sim.Interp.offchip env "price" in
  let expected =
    K.blackscholes ~spot ~strike ~time ~rate:Dhdl_apps.Blackscholes_app.rate
      ~volatility:Dhdl_apps.Blackscholes_app.volatility ~otype
  in
  let worst =
    Array.mapi (fun i g -> Float.abs (g -. expected.(i))) got
    |> Array.fold_left Float.max 0.0
  in
  Printf.printf "functional check vs CPU kernel: %d options, worst abs error %.2e\n\n" n worst;
  assert (worst < 1e-3);

  (* Generate hardware for a full-size design point. *)
  let design =
    app.App.generate ~sizes:app.App.paper_sizes
      ~params:[ ("tile", 15_008); ("par", 8); ("meta", 1) ]
  in
  let kernel = Dhdl_codegen.Maxj.emit design in
  let manager = Dhdl_codegen.Maxj.emit_manager design in
  Printf.printf "=== %s.maxj (%d lines) ===\n"
    (Dhdl_codegen.Maxj.kernel_class_name design)
    (List.length (String.split_on_char '\n' kernel));
  print_string kernel;
  Printf.printf "\n=== manager (%d lines) ===\n"
    (List.length (String.split_on_char '\n' manager));
  print_string manager
