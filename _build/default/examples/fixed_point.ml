(* Variable bit-width types (Section III.B): the same dot-product datapath
   at three precisions — single-precision float, 32-bit and 16-bit fixed
   point — showing how the type system drives area. On FPGAs, narrow fixed
   point buys large ALM/DSP savings; the estimator quantifies the tradeoff
   without synthesizing anything.

     dune exec examples/fixed_point.exe
*)

module Ir = Dhdl_ir.Ir
module B = Dhdl_ir.Builder
module Op = Dhdl_ir.Op
module Dtype = Dhdl_ir.Dtype

let build ~name ~ty ~n ~tile ~par =
  let b = B.create ~params:[ ("tile", tile); ("par", par) ] name in
  let x = B.offchip b "x" ty [ n ] in
  let y = B.offchip b "y" ty [ n ] in
  let xt = B.bram b "xT" ty [ tile ] in
  let yt = B.bram b "yT" ty [ tile ] in
  let partial = B.reg b "partial" ty in
  let result = B.reg b "result" ty in
  let inner =
    B.reduce_pipe ~label:"dot" ~counters:[ ("i", 0, tile, 1) ] ~par ~op:Op.Add ~out:partial
      (fun pb ->
        let a = B.load pb xt [ B.iter "i" ] in
        let c = B.load pb yt [ B.iter "i" ] in
        B.op pb ~ty Op.Mul [ a; c ])
  in
  let top =
    B.metapipe ~label:"tiles" ~counters:[ ("t", 0, n, tile) ] ~reduce:(Op.Add, partial, result)
      [
        B.parallel ~label:"loads"
          [
            B.tile_load ~src:x ~dst:xt ~offsets:[ B.iter "t" ] ~par ();
            B.tile_load ~src:y ~dst:yt ~offsets:[ B.iter "t" ] ~par ();
          ];
        inner;
      ]
  in
  B.finish b ~top

let () =
  let n = 1_048_576 and tile = 1024 and par = 16 in
  Printf.printf "dot product, n = %d, tile = %d, par = %d, three precisions:\n\n" n tile par;
  Printf.printf "%-14s %10s %8s %8s %8s %12s\n" "type" "ALMs" "DSPs" "BRAMs" "regs" "cycles";
  List.iter
    (fun (label, ty) ->
      let d = build ~name:("dot_" ^ label) ~ty ~n ~tile ~par in
      Dhdl_ir.Analysis.validate_exn d;
      let rpt = Dhdl_synth.Toolchain.synthesize d in
      let sim = Dhdl_sim.Perf_sim.simulate d in
      Printf.printf "%-14s %10d %8d %8d %8d %12.0f\n" (Dtype.to_string ty)
        rpt.Dhdl_synth.Report.alms rpt.Dhdl_synth.Report.dsps rpt.Dhdl_synth.Report.brams
        rpt.Dhdl_synth.Report.regs sim.Dhdl_sim.Perf_sim.cycles)
    [
      ("f32", Dtype.float32);
      ("fix32", Dtype.fixed ~int_bits:24 ~frac_bits:8 ());
      ("fix16", Dtype.fixed ~int_bits:10 ~frac_bits:6 ());
    ];
  print_newline ();
  (* Functional check in fixed point: integer-valued data is exact. *)
  let d = build ~name:"dot_check" ~ty:Dtype.int32 ~n:1024 ~tile:256 ~par:4 in
  let x = Array.init 1024 (fun i -> float_of_int (i mod 7)) in
  let y = Array.init 1024 (fun i -> float_of_int (i mod 5)) in
  let env = Dhdl_sim.Interp.run d ~inputs:[ ("x", x); ("y", y) ] in
  let expect = Dhdl_cpu.Kernels.dotproduct x y in
  assert (Float.abs (Dhdl_sim.Interp.reg env "result" -. expect) < 1e-6);
  Printf.printf "fixed-point result matches the float reference: %g\n" expect
