examples/topk_queue.ml: Array Dhdl_ir Dhdl_sim Dhdl_synth Dhdl_util Float Printf
