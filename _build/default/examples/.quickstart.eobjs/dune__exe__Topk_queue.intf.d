examples/topk_queue.mli:
