examples/blackscholes_codegen.mli:
