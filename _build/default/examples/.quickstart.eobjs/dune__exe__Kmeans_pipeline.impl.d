examples/kmeans_pipeline.ml: Array Dhdl_apps Dhdl_cpu Dhdl_ir Dhdl_sim Dhdl_util Float Printf String
