examples/blackscholes_codegen.ml: Array Dhdl_apps Dhdl_codegen Dhdl_cpu Dhdl_sim Dhdl_util Float List Printf String
