examples/gda_exploration.mli:
