examples/kmeans_pipeline.mli:
