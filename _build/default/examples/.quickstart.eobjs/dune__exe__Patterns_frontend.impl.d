examples/patterns_frontend.ml: Array Dhdl_codegen Dhdl_ir Dhdl_model Dhdl_patterns Dhdl_sim Dhdl_synth Dhdl_util Float List Printf String
