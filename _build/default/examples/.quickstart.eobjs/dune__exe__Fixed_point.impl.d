examples/fixed_point.ml: Array Dhdl_cpu Dhdl_ir Dhdl_sim Dhdl_synth Float List Printf
