examples/quickstart.mli:
