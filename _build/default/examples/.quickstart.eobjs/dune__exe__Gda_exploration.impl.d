examples/gda_exploration.ml: Dhdl_apps Dhdl_core Dhdl_cpu Dhdl_dse Dhdl_model Dhdl_sim Dhdl_synth Dhdl_util List Printf String
