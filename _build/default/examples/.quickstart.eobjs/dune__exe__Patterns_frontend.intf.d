examples/patterns_frontend.mli:
