examples/quickstart.ml: Array Dhdl_ir Dhdl_model Dhdl_sim Dhdl_synth Float Printf
