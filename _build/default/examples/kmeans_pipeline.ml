(* An end-to-end machine-learning pipeline on the accelerator: run several
   k-means iterations by alternating the FPGA design (functional
   interpreter standing in for the board) with a tiny host-side step that
   divides the accumulated sums — mirroring how the MAIA board's host CPU
   drives the kernel through Maxeler's runtime (Section V.A).

     dune exec examples/kmeans_pipeline.exe
*)

module App = Dhdl_apps.App
module K = Dhdl_cpu.Kernels
module Rng = Dhdl_util.Rng

let () =
  let app = Dhdl_apps.Registry.find "kmeans" in
  let sizes = [ ("n", 256); ("k", 4); ("d", 8) ] in
  let n = App.size sizes "n" and k = App.size sizes "k" and d = App.size sizes "d" in
  let design = app.App.generate ~sizes ~params:[ ("tile", 64); ("parDist", 4); ("parAcc", 2); ("parPoints", 2); ("meta", 1) ] in
  Dhdl_ir.Analysis.validate_exn design;

  (* Three well-separated clusters plus noise. *)
  let rng = Rng.create 99 in
  let data =
    Array.init (n * d) (fun i ->
        let point = i / d in
        let center = float_of_int (point mod 3) *. 10.0 in
        center +. Rng.gaussian rng ~mean:0.0 ~sigma:0.5)
  in
  let centroids = ref (Array.init (k * d) (fun _ -> Rng.float_in rng 0.0 25.0)) in

  for iter = 1 to 5 do
    (* "Run the accelerator": one pass accumulating per-cluster sums. *)
    let env =
      Dhdl_sim.Interp.run design ~inputs:[ ("points", data); ("centroids", !centroids) ]
    in
    let sums = Dhdl_sim.Interp.offchip env "sums" in
    let counts = Dhdl_sim.Interp.offchip env "counts" in
    (* Host-side divide (as the paper's host code would). *)
    let next =
      Array.init (k * d) (fun i ->
          let c = i / d in
          if counts.(c) > 0.0 then sums.(i) /. counts.(c) else !centroids.(i))
    in
    (* Cross-check against the pure CPU reference. *)
    let reference = K.kmeans_step ~points:n ~dims:d ~k ~data ~centroids:!centroids in
    Array.iteri (fun i v -> assert (Float.abs (v -. reference.(i)) < 1e-4)) next;
    let movement =
      Array.mapi (fun i v -> Float.abs (v -. !centroids.(i))) next
      |> Array.fold_left Float.max 0.0
    in
    centroids := next;
    Printf.printf "iteration %d: cluster sizes = [%s], max centroid movement = %.4f\n" iter
      (String.concat "; " (Array.to_list (Array.map (fun c -> Printf.sprintf "%.0f" c) counts)))
      movement
  done;

  (* What would this cost on the real board? *)
  let full = App.generate_default app app.App.paper_sizes in
  let sim = Dhdl_sim.Perf_sim.simulate full in
  Printf.printf
    "\nat Table II scale (960,000 points): %.3f s per iteration on the FPGA (simulated), %.1f MB DRAM traffic\n"
    sim.Dhdl_sim.Perf_sim.seconds
    (sim.Dhdl_sim.Perf_sim.dram_bytes /. 1e6)
