(* The Priority Queue template (Table I): a streaming top-K accelerator.

   A bounded hardware sorting queue keeps the K smallest values seen while
   tiles stream through on-chip memory; a drain pipe then emits them in
   ascending order. This is the template DDDG-based tools cannot express
   (Section II's filter/groupBy discussion).

     dune exec examples/topk_queue.exe
*)

module Ir = Dhdl_ir.Ir
module B = Dhdl_ir.Builder
module Dtype = Dhdl_ir.Dtype
module Rng = Dhdl_util.Rng

let build ~n ~tile ~k =
  let b = B.create ~params:[ ("tile", tile); ("k", k) ] "topk" in
  let x = B.offchip b "x" Dtype.float32 [ n ] in
  let out = B.offchip b "out" Dtype.float32 [ k ] in
  let xt = B.bram b "xT" Dtype.float32 [ tile ] in
  let outt = B.bram b "outT" Dtype.float32 [ k ] in
  let q = B.queue b "q" Dtype.float32 ~depth:k in
  let insert =
    B.pipe ~label:"insert" ~counters:[ ("i", 0, tile, 1) ] (fun pb ->
        B.push pb q (B.load pb xt [ B.iter "i" ]))
  in
  let stream =
    B.metapipe ~label:"tiles"
      ~counters:[ ("t", 0, n, tile) ]
      [ B.tile_load ~src:x ~dst:xt ~offsets:[ B.iter "t" ] (); insert ]
  in
  let drain =
    B.pipe ~label:"drain" ~counters:[ ("j", 0, k, 1) ] (fun pb ->
        B.store pb outt [ B.iter "j" ] (B.pop pb q))
  in
  let top =
    B.sequential_block ~label:"main"
      [ stream; drain; B.tile_store ~dst:out ~src:outt ~offsets:[ B.const 0.0 ] () ]
  in
  B.finish b ~top

let () =
  let n = 4096 and tile = 256 and k = 16 in
  let design = build ~n ~tile ~k in
  Dhdl_ir.Analysis.validate_exn design;
  print_endline (Dhdl_ir.Pretty.design design);

  let rng = Rng.create 31 in
  let data = Array.init n (fun _ -> Rng.float_in rng 0.0 1000.0) in
  let env = Dhdl_sim.Interp.run design ~inputs:[ ("x", data) ] in
  let got = Dhdl_sim.Interp.offchip env "out" in
  let expected =
    let sorted = Array.copy data in
    Array.sort compare sorted;
    Array.sub sorted 0 k
  in
  Array.iteri (fun i v -> assert (Float.abs (v -. expected.(i)) < 1e-6)) got;
  Printf.printf "\ntop-%d of %d values correct: smallest = %.2f, largest kept = %.2f\n" k n
    got.(0)
    got.(k - 1);

  let report = Dhdl_synth.Toolchain.synthesize design in
  let sim = Dhdl_sim.Perf_sim.simulate design in
  Printf.printf "post-P&R: %s\n" (Dhdl_synth.Report.to_string report);
  Printf.printf "simulated: %.0f cycles (%.2f us at 150 MHz)\n" sim.Dhdl_sim.Perf_sim.cycles
    (sim.Dhdl_sim.Perf_sim.seconds *. 1e6)
